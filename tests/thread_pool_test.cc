#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace uots {
namespace {

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_TRUE(pool.shutting_down());
  EXPECT_THROW(pool.Submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] {
        ++ran;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
    }
    pool.Shutdown();  // must wait for all 16, not abandon the queue
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenShutDown) {
  ThreadPool pool(2);
  pool.Shutdown();
  auto fut = pool.TrySubmit([] { return 1; });
  EXPECT_FALSE(fut.has_value());
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  ThreadPool pool(1, /*max_queue=*/2);
  EXPECT_EQ(pool.max_queue(), 2u);

  // Block the single worker so queued tasks pile up deterministically.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocker = pool.TrySubmit([opened] { opened.wait(); });
  ASSERT_TRUE(blocker.has_value());
  // Give the worker a moment to dequeue the blocker; then the queue (not
  // the worker) must absorb exactly max_queue more tasks.
  while (pool.QueueDepth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<std::future<void>> accepted;
  for (int i = 0; i < 2; ++i) {
    auto f = pool.TrySubmit([] {});
    ASSERT_TRUE(f.has_value()) << "queue rejected below its bound (i=" << i
                               << ")";
    accepted.push_back(std::move(*f));
  }
  auto rejected = pool.TrySubmit([] {});
  EXPECT_FALSE(rejected.has_value()) << "queue accepted beyond its bound";

  gate.set_value();
  blocker->get();
  for (auto& f : accepted) f.get();
  // With the queue drained, TrySubmit admits again.
  auto retry = pool.TrySubmit([] { return; });
  EXPECT_TRUE(retry.has_value());
  retry->get();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(64, [&](size_t i) {
      ++ran;
      if (i == 13) throw std::runtime_error("boom at 13");
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 13");
  }
  // The pool must survive the exception and keep serving.
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

}  // namespace
}  // namespace uots

// Span tracer: session gating, nesting, thread-local buffer flush, and
// the Chrome trace_event export. The whole file also compiles and passes
// with -DUOTS_TRACE=0, where it instead verifies the compiled-out
// contract (no spans, no cost, API intact).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "util/trace.h"

namespace uots {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Stop();
    Trace::Clear();
  }
  void TearDown() override {
    Trace::Stop();
    Trace::Clear();
  }
};

[[maybe_unused]] int CountNamed(const std::vector<TraceEvent>& events,
                                const std::string& name) {
  return static_cast<int>(
      std::count_if(events.begin(), events.end(),
                    [&](const TraceEvent& e) { return name == e.name; }));
}

TEST_F(TraceTest, NoRecordingWithoutSession) {
  EXPECT_FALSE(Trace::active());
  { UOTS_TRACE_SCOPE("idle_span"); }
  EXPECT_TRUE(Trace::Snapshot().empty());
}

TEST_F(TraceTest, RecordsWhileActiveOnly) {
  Trace::Start();
  EXPECT_TRUE(Trace::active());
  { UOTS_TRACE_SCOPE("during"); }
  Trace::Stop();
  EXPECT_FALSE(Trace::active());
  { UOTS_TRACE_SCOPE("after"); }

  const auto events = Trace::Snapshot();
#if UOTS_TRACE
  EXPECT_EQ(CountNamed(events, "during"), 1);
  EXPECT_EQ(CountNamed(events, "after"), 0);
#else
  EXPECT_TRUE(events.empty());
#endif
}

TEST_F(TraceTest, NestedSpansCarryDepthAndContainment) {
  Trace::Start();
  {
    UOTS_TRACE_SCOPE("outer");
    {
      UOTS_TRACE_SCOPE("inner");
    }
  }
  Trace::Stop();
  const auto events = Trace::Snapshot();
#if UOTS_TRACE
  ASSERT_EQ(events.size(), 2u);
  const auto& inner = events[0].depth == 1 ? events[0] : events[1];
  const auto& outer = events[0].depth == 1 ? events[1] : events[0];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  // The inner span is contained in the outer one.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
#else
  EXPECT_TRUE(events.empty());
#endif
}

TEST_F(TraceTest, SpanIdIsExported) {
  Trace::Start();
  { UOTS_TRACE_SCOPE_ID("with_id", 42); }
  Trace::Stop();
#if UOTS_TRACE
  const auto events = Trace::Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, 42);
  EXPECT_NE(Trace::ToChromeJson().find("\"id\": 42"), std::string::npos);
#endif
}

TEST_F(TraceTest, EventsSurviveThreadExit) {
  Trace::Start();
  std::thread worker([] { UOTS_TRACE_SCOPE("worker_span"); });
  worker.join();
  std::thread worker2([] { UOTS_TRACE_SCOPE("worker_span"); });
  worker2.join();
  Trace::Stop();
  const auto events = Trace::Snapshot();
#if UOTS_TRACE
  // Both spans are visible after their threads exited, on distinct tids.
  ASSERT_EQ(CountNamed(events, "worker_span"), 2);
  std::vector<uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_NE(tids[0], tids[1]);
#else
  EXPECT_TRUE(events.empty());
#endif
}

TEST_F(TraceTest, ChromeJsonShape) {
  Trace::Start();
  { UOTS_TRACE_SCOPE("json_span"); }
  Trace::Stop();
  const std::string json = Trace::ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
#if UOTS_TRACE
  EXPECT_NE(json.find("\"name\": \"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
#endif
}

TEST_F(TraceTest, ClearDropsEverything) {
  Trace::Start();
  { UOTS_TRACE_SCOPE("cleared"); }
  Trace::Stop();
  Trace::Clear();
  EXPECT_TRUE(Trace::Snapshot().empty());
  EXPECT_EQ(Trace::dropped(), 0);
}

TEST_F(TraceTest, CompiledOutScopeIsZeroCost) {
#if !UOTS_TRACE
  // The no-op TraceScope must carry no state at all.
  EXPECT_EQ(sizeof(TraceScope), 1u);  // empty class
  Trace::Start();
  { UOTS_TRACE_SCOPE("nothing"); }
  Trace::Stop();
  EXPECT_TRUE(Trace::Snapshot().empty());
#else
  GTEST_SKIP() << "tracer compiled in";
#endif
}

TEST_F(TraceTest, ThreadCaptureWorksWithoutSession) {
  EXPECT_FALSE(Trace::active());
  Trace::BeginThreadCapture();
  { UOTS_TRACE_SCOPE_ID("sampled_request", 77); }
  const auto spans = Trace::EndThreadCapture();
#if UOTS_TRACE
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "sampled_request");
  EXPECT_EQ(spans[0].id, 77);
  // Without a global session the captured spans are removed from the
  // thread buffer: perpetual sampling must not fill it or leak into a
  // later export.
  EXPECT_TRUE(Trace::Snapshot().empty());
#else
  EXPECT_TRUE(spans.empty());
#endif
}

TEST_F(TraceTest, ThreadCaptureIsPerThread) {
  Trace::BeginThreadCapture();
  std::thread other([] { UOTS_TRACE_SCOPE("other_thread_span"); });
  other.join();
  { UOTS_TRACE_SCOPE("this_thread_span"); }
  const auto spans = Trace::EndThreadCapture();
#if UOTS_TRACE
  // Only the capturing thread's spans come back; the other thread had
  // neither a session nor a capture, so its span was never recorded.
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "this_thread_span");
#else
  EXPECT_TRUE(spans.empty());
#endif
}

TEST_F(TraceTest, ThreadCaptureDuringSessionKeepsEventsInBuffer) {
  Trace::Start();
  Trace::BeginThreadCapture();
  { UOTS_TRACE_SCOPE("both"); }
  const auto spans = Trace::EndThreadCapture();
  Trace::Stop();
#if UOTS_TRACE
  ASSERT_EQ(spans.size(), 1u);
  // The global session still owns the events: they stay visible to
  // Snapshot() even though a capture also returned them.
  EXPECT_EQ(CountNamed(Trace::Snapshot(), "both"), 1);
#else
  EXPECT_TRUE(spans.empty());
#endif
}

TEST_F(TraceTest, EmptyThreadCapture) {
  Trace::BeginThreadCapture();
  EXPECT_TRUE(Trace::EndThreadCapture().empty());
  // EndThreadCapture without a matching Begin is harmless.
  EXPECT_TRUE(Trace::EndThreadCapture().empty());
}

TEST_F(TraceTest, NowNsIsMonotonic) {
  const int64_t a = Trace::NowNs();
  const int64_t b = Trace::NowNs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

}  // namespace
}  // namespace uots

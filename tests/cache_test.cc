// Cross-query caching: result-cache key canonicalization, the sharded LRU
// result cache, the tier-2 distance-field cache + replaying cursor (with
// the bit-identity guarantee that justifies it), and the service-side
// integration (engine-pool cap, concurrent hammer).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/distance_field_cache.h"
#include "cache/expansion_cursor.h"
#include "cache/query_key.h"
#include "cache/result_cache.h"
#include "core/batch.h"
#include "core/workload.h"
#include "net/expansion.h"
#include "net/generators.h"
#include "server/service.h"
#include "text/zipf.h"
#include "traj/generator.h"
#include "util/rng.h"

namespace uots {
namespace {

const TrajectoryDatabase& TestDb() {
  static auto* db = [] {
    GridNetworkOptions gopts;
    gopts.rows = 16;
    gopts.cols = 16;
    gopts.seed = 41;
    auto g = MakeGridNetwork(gopts);
    TripGeneratorOptions topts;
    topts.num_trajectories = 300;
    topts.vocabulary_size = 120;
    topts.seed = 42;
    auto data = GenerateTrips(*g, topts);
    return new TrajectoryDatabase(std::move(*g), std::move(data->store),
                                  std::move(data->vocabulary));
  }();
  return *db;
}

UotsQuery BaseQuery() {
  UotsQuery q;
  q.locations = {5, 1, 9};
  q.keywords = KeywordSet({3, 7, 11});
  q.lambda = 0.5;
  q.k = 5;
  return q;
}

// ---------------------------------------------------------------- query_key

TEST(QueryKey, LocationPermutationInvariant) {
  const UotsSearchOptions opts;
  UotsQuery a = BaseQuery();
  UotsQuery b = BaseQuery();
  b.locations = {9, 5, 1};
  EXPECT_EQ(EncodeResultCacheKey(a, AlgorithmKind::kUots, opts, 1),
            EncodeResultCacheKey(b, AlgorithmKind::kUots, opts, 1));
}

TEST(QueryKey, KeywordOrderInvariant) {
  const UotsSearchOptions opts;
  UotsQuery a = BaseQuery();
  UotsQuery b = BaseQuery();
  b.keywords = KeywordSet({11, 3, 7, 3});  // reordered + duplicate
  EXPECT_EQ(EncodeResultCacheKey(a, AlgorithmKind::kUots, opts, 1),
            EncodeResultCacheKey(b, AlgorithmKind::kUots, opts, 1));
}

TEST(QueryKey, DuplicateLocationsArePreserved) {
  // {5,5,1} visits vertex 5 twice — a different query than {5,1}.
  const UotsSearchOptions opts;
  UotsQuery a = BaseQuery();
  a.locations = {5, 1};
  UotsQuery b = BaseQuery();
  b.locations = {5, 5, 1};
  EXPECT_NE(EncodeResultCacheKey(a, AlgorithmKind::kUots, opts, 1),
            EncodeResultCacheKey(b, AlgorithmKind::kUots, opts, 1));
}

TEST(QueryKey, SensitiveToEveryAnswerAffectingKnob) {
  const UotsSearchOptions opts;
  const UotsQuery base = BaseQuery();
  const std::string key =
      EncodeResultCacheKey(base, AlgorithmKind::kUots, opts, 1);

  UotsQuery q = base;
  q.lambda = 0.7;
  EXPECT_NE(key, EncodeResultCacheKey(q, AlgorithmKind::kUots, opts, 1));

  q = base;
  q.k = 6;
  EXPECT_NE(key, EncodeResultCacheKey(q, AlgorithmKind::kUots, opts, 1));

  q = base;
  q.locations.push_back(2);
  EXPECT_NE(key, EncodeResultCacheKey(q, AlgorithmKind::kUots, opts, 1));

  // Different algorithm kinds may rank ties differently.
  EXPECT_NE(key, EncodeResultCacheKey(base, AlgorithmKind::kBruteForce, opts, 1));

  // Different dataset builds must never share answers.
  EXPECT_NE(key, EncodeResultCacheKey(base, AlgorithmKind::kUots, opts, 2));

  // Search knobs that can steer abort/tie behaviour are part of the key...
  UotsSearchOptions sopts;
  sopts.scheduling = SchedulingPolicy::kRoundRobin;
  EXPECT_NE(key, EncodeResultCacheKey(base, AlgorithmKind::kUots, sopts, 1));
  sopts = {};
  sopts.batch_size = 128;
  EXPECT_NE(key, EncodeResultCacheKey(base, AlgorithmKind::kUots, sopts, 1));

  // ...but the tier-2 cache is NOT: it never changes an output bit.
  sopts = {};
  sopts.distance_cache = std::make_shared<DistanceFieldCache>();
  EXPECT_EQ(key, EncodeResultCacheKey(base, AlgorithmKind::kUots, sopts, 1));
}

TEST(QueryKey, HashIsStableAndSpreads) {
  const UotsSearchOptions opts;
  const std::string a =
      EncodeResultCacheKey(BaseQuery(), AlgorithmKind::kUots, opts, 1);
  EXPECT_EQ(HashCacheKey(a), HashCacheKey(a));
  UotsQuery q = BaseQuery();
  q.k = 6;
  const std::string b =
      EncodeResultCacheKey(q, AlgorithmKind::kUots, opts, 1);
  EXPECT_NE(HashCacheKey(a), HashCacheKey(b));
}

// ------------------------------------------------------------- result_cache

std::shared_ptr<const CachedResult> MakeValue(TrajId id) {
  auto v = std::make_shared<CachedResult>();
  v->items.push_back({id, 1.0, 0.5, 0.5});
  return v;
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsed) {
  ResultCache::Options opts;
  opts.max_entries = 2;
  opts.shards = 1;
  ResultCache cache(opts);
  cache.Insert("a", MakeValue(1));
  cache.Insert("b", MakeValue(2));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refresh "a"
  cache.Insert("c", MakeValue(3));        // evicts "b"
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  ASSERT_NE(cache.Lookup("a"), nullptr);
  ASSERT_NE(cache.Lookup("c"), nullptr);
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  EXPECT_GT(s.bytes, 0);
}

TEST(ResultCacheTest, TtlExpiresEntries) {
  ResultCache::Options opts;
  opts.max_entries = 8;
  opts.ttl_ms = 1.0;
  opts.shards = 1;
  ResultCache cache(opts);
  cache.Insert("a", MakeValue(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.expired, 1);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
}

TEST(ResultCacheTest, ReplaceUpdatesInPlace) {
  ResultCache::Options opts;
  opts.max_entries = 4;
  opts.shards = 1;
  ResultCache cache(opts);
  cache.Insert("a", MakeValue(1));
  cache.Insert("a", MakeValue(9));
  auto v = cache.Lookup("a");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->items[0].id, 9);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsEventCounters) {
  ResultCache cache;
  cache.Insert("a", MakeValue(1));
  ASSERT_NE(cache.Lookup("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
}

// ----------------------------------------------------- distance_field_cache

std::shared_ptr<ExpansionPrefix> MakePrefix(VertexId source, size_t n,
                                            bool complete = false) {
  auto p = std::make_shared<ExpansionPrefix>();
  p->source = source;
  for (size_t i = 0; i < n; ++i) {
    p->vertices.push_back(static_cast<VertexId>(i));
    p->dists.push_back(static_cast<double>(i));
  }
  p->complete = complete;
  return p;
}

TEST(DistanceFieldCacheTest, MissPublishHit) {
  DistanceFieldCache cache;
  uint64_t v = 0;
  EXPECT_EQ(cache.Acquire(7, &v), nullptr);
  EXPECT_TRUE(cache.Publish(MakePrefix(7, 10), v));
  auto p = cache.Acquire(7, &v);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->size(), 10u);
  const DistanceFieldCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.publishes, 1);
}

TEST(DistanceFieldCacheTest, OnlyImprovementsReplace) {
  DistanceFieldCache cache;
  uint64_t v = 0;
  cache.Acquire(7, &v);
  EXPECT_TRUE(cache.Publish(MakePrefix(7, 10), v));
  // Shorter: rejected. Equal-length incomplete: rejected.
  EXPECT_FALSE(cache.Publish(MakePrefix(7, 5), v));
  EXPECT_FALSE(cache.Publish(MakePrefix(7, 10), v));
  // Equal length but newly complete: accepted.
  EXPECT_TRUE(cache.Publish(MakePrefix(7, 10, /*complete=*/true), v));
  // Longer: accepted.
  EXPECT_TRUE(cache.Publish(MakePrefix(7, 20, true), v));
  auto p = cache.Acquire(7, &v);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->size(), 20u);
  EXPECT_TRUE(p->complete);
  EXPECT_EQ(cache.stats().rejected, 2);
}

TEST(DistanceFieldCacheTest, InvalidateOrphansOutstandingPublishes) {
  DistanceFieldCache cache;
  uint64_t v = 0;
  cache.Acquire(7, &v);
  cache.Invalidate();
  EXPECT_FALSE(cache.Publish(MakePrefix(7, 10), v));  // stale version
  uint64_t v2 = 0;
  EXPECT_EQ(cache.Acquire(7, &v2), nullptr);  // everything dropped
  EXPECT_NE(v2, v);
  EXPECT_TRUE(cache.Publish(MakePrefix(7, 10), v2));
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST(DistanceFieldCacheTest, ByteBudgetEvictsLru) {
  DistanceFieldCache::Options opts;
  // Room for roughly two 64-event prefixes (12 bytes/event + overhead).
  opts.max_bytes = 2200;
  DistanceFieldCache cache(opts);
  uint64_t v = 0;
  for (VertexId s = 0; s < 6; ++s) {
    cache.Acquire(s, &v);
    EXPECT_TRUE(cache.Publish(MakePrefix(s, 64), v));
  }
  const DistanceFieldCache::Stats st = cache.stats();
  EXPECT_GT(st.evictions, 0);
  EXPECT_LT(st.entries, 6);
  EXPECT_LE(st.bytes, 2200);
  // A prefix that alone busts the budget is refused outright.
  cache.Acquire(100, &v);
  EXPECT_FALSE(cache.Publish(MakePrefix(100, 4096), v));
}

// --------------------------------------------------------- expansion_cursor

struct Event {
  VertexId v;
  double d;
};

std::vector<Event> DrainCursor(ExpansionCursor& cur) {
  std::vector<Event> out;
  VertexId v;
  double d;
  while (cur.Step(&v, &d)) out.push_back({v, d});
  return out;
}

std::vector<Event> FreshEvents(const RoadNetwork& g, VertexId source) {
  NetworkExpansion ex(g);
  ex.Reset(source);
  std::vector<Event> out;
  VertexId v;
  double d;
  while (ex.Step(&v, &d)) out.push_back({v, d});
  return out;
}

void ExpectSameEvents(const std::vector<Event>& a,
                      const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].v, b[i].v) << "event " << i;
    EXPECT_EQ(a[i].d, b[i].d) << "event " << i;  // exact, not approximate
  }
}

TEST(ExpansionCursorTest, PassThroughMatchesNetworkExpansion) {
  const RoadNetwork& g = TestDb().network();
  ExpansionCursor cur(g);
  cur.Begin(12, nullptr);
  EXPECT_FALSE(cur.from_cache());
  ExpectSameEvents(DrainCursor(cur), FreshEvents(g, 12));
  EXPECT_TRUE(cur.exhausted());
  EXPECT_EQ(cur.heap_pops(), cur.live_settled_count());
}

TEST(ExpansionCursorTest, ReplayIsBitIdentical) {
  const RoadNetwork& g = TestDb().network();
  DistanceFieldCache cache;

  ExpansionCursor first(g);
  first.Begin(12, &cache);
  const std::vector<Event> fresh = DrainCursor(first);
  EXPECT_TRUE(first.Publish());

  ExpansionCursor second(g);
  second.Begin(12, &cache);
  EXPECT_TRUE(second.from_cache());
  ExpectSameEvents(DrainCursor(second), fresh);
  // A complete prefix replays the whole component with zero heap work.
  EXPECT_EQ(second.heap_pops(), 0);
  EXPECT_EQ(second.replayed_count(), static_cast<int64_t>(fresh.size()));
  EXPECT_EQ(second.settled_count(), static_cast<int64_t>(fresh.size()));
  // Nothing new to offer back.
  EXPECT_FALSE(second.Publish());
}

TEST(ExpansionCursorTest, FastForwardPastTruncatedPrefix) {
  const RoadNetwork& g = TestDb().network();
  DistanceFieldCache::Options opts;
  opts.max_events_per_source = 5;  // force truncation + fast-forward
  DistanceFieldCache cache(opts);

  ExpansionCursor first(g);
  first.Begin(12, &cache);
  const std::vector<Event> fresh = DrainCursor(first);
  ASSERT_GT(fresh.size(), 5u);
  EXPECT_TRUE(first.Publish());  // truncated to 5 events, incomplete

  ExpansionCursor second(g);
  second.Begin(12, &cache);
  EXPECT_TRUE(second.from_cache());
  ExpectSameEvents(DrainCursor(second), fresh);
  EXPECT_EQ(second.replayed_count(), 5);
  // Fast-forward went live and re-settled everything (prefix + remainder).
  EXPECT_EQ(second.live_settled_count(), static_cast<int64_t>(fresh.size()));
  EXPECT_EQ(second.settled_count(), static_cast<int64_t>(fresh.size()));
}

TEST(ExpansionCursorTest, PartialRunPublishesAndLaterRunsDeepen) {
  const RoadNetwork& g = TestDb().network();
  DistanceFieldCache cache;

  // Run A settles only 8 events, then publishes an 8-event prefix.
  ExpansionCursor a(g);
  a.Begin(12, &cache);
  VertexId v;
  double d;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(a.Step(&v, &d));
  EXPECT_TRUE(a.Publish());

  // Run B replays 8, outruns the prefix (fast-forward), settles 20, and
  // publishes the deeper prefix.
  ExpansionCursor b(g);
  b.Begin(12, &cache);
  EXPECT_TRUE(b.from_cache());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(b.Step(&v, &d));
  EXPECT_EQ(b.replayed_count(), 8);
  EXPECT_TRUE(b.Publish());

  uint64_t ver = 0;
  auto p = cache.Acquire(12, &ver);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->size(), 20u);

  // Run C stays inside the stored prefix: nothing new to publish.
  ExpansionCursor c(g);
  c.Begin(12, &cache);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(c.Step(&v, &d));
  EXPECT_FALSE(c.Publish());
}

TEST(ExpansionCursorTest, RadiusTracksReplayedDistance) {
  const RoadNetwork& g = TestDb().network();
  DistanceFieldCache cache;
  ExpansionCursor first(g);
  first.Begin(12, &cache);
  const std::vector<Event> fresh = DrainCursor(first);
  first.Publish();

  ExpansionCursor second(g);
  second.Begin(12, &cache);
  VertexId v;
  double d;
  for (size_t i = 0; i < fresh.size(); ++i) {
    ASSERT_TRUE(second.Step(&v, &d));
    EXPECT_EQ(second.radius(), fresh[i].d) << "event " << i;
  }
}

// ------------------------------------------- tier-2 end-to-end bit identity

TEST(DistanceFieldCacheIntegration, RunQueryBitIdenticalAcrossAllEngines) {
  WorkloadOptions wopts;
  wopts.num_queries = 10;
  wopts.num_locations = 3;
  wopts.k = 5;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());

  const AlgorithmKind kinds[] = {
      AlgorithmKind::kBruteForce,     AlgorithmKind::kTextFirst,
      AlgorithmKind::kUots,           AlgorithmKind::kUotsNoHeuristic,
      AlgorithmKind::kUotsSequential, AlgorithmKind::kEuclidean,
  };
  for (AlgorithmKind kind : kinds) {
    auto dcache = std::make_shared<DistanceFieldCache>();
    QueryOptions plain;
    plain.algorithm = kind;
    QueryOptions cached = plain;
    cached.uots.distance_cache = dcache;

    for (const UotsQuery& q : *queries) {
      auto r0 = RunQuery(TestDb(), q, plain);
      auto cold = RunQuery(TestDb(), q, cached);
      auto warm = RunQuery(TestDb(), q, cached);
      ASSERT_TRUE(r0.ok() && cold.ok() && warm.ok()) << ToString(kind);
      for (const auto* rc : {&cold.value(), &warm.value()}) {
        ASSERT_EQ(rc->items.size(), r0->items.size()) << ToString(kind);
        for (size_t i = 0; i < r0->items.size(); ++i) {
          EXPECT_EQ(rc->items[i].id, r0->items[i].id) << ToString(kind);
          // Bit-for-bit: exact double equality, no tolerance.
          EXPECT_EQ(rc->items[i].score, r0->items[i].score) << ToString(kind);
          EXPECT_EQ(rc->items[i].spatial_sim, r0->items[i].spatial_sim);
          EXPECT_EQ(rc->items[i].textual_sim, r0->items[i].textual_sim);
        }
      }
    }
    // The expansion-based engines must actually exercise the cache.
    if (kind == AlgorithmKind::kUots ||
        kind == AlgorithmKind::kUotsNoHeuristic ||
        kind == AlgorithmKind::kUotsSequential) {
      const DistanceFieldCache::Stats s = dcache->stats();
      EXPECT_GT(s.publishes, 0) << ToString(kind);
      EXPECT_GT(s.hits, 0) << ToString(kind);
    }
  }
}

TEST(DistanceFieldCacheIntegration, WarmRunsReportCacheWork) {
  WorkloadOptions wopts;
  wopts.num_queries = 6;
  wopts.num_locations = 3;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());
  QueryOptions opts;
  opts.uots.distance_cache = std::make_shared<DistanceFieldCache>();
  int64_t hits = 0, replayed = 0, published = 0;
  for (int round = 0; round < 2; ++round) {
    for (const UotsQuery& q : *queries) {
      auto r = RunQuery(TestDb(), q, opts);
      ASSERT_TRUE(r.ok());
      hits += r->stats.dcache_hits;
      replayed += r->stats.dcache_replayed;
      published += r->stats.dcache_published;
    }
  }
  EXPECT_GT(hits, 0);
  EXPECT_GT(replayed, 0);
  EXPECT_GT(published, 0);
}

// ------------------------------------------------------ service integration

TEST(ServiceCache, PooledEnginesCappedPerKind) {
  ServiceOptions sopts;
  sopts.threads = 2;
  sopts.max_inflight = 128;
  UotsService service(TestDb(), sopts);

  WorkloadOptions wopts;
  wopts.num_queries = 8;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());

  const AlgorithmKind kinds[] = {AlgorithmKind::kUots,
                                 AlgorithmKind::kBruteForce,
                                 AlgorithmKind::kTextFirst};
  std::mutex mu;
  std::condition_variable cv;
  size_t done_count = 0;
  size_t submitted = 0;
  for (int round = 0; round < 4; ++round) {
    for (AlgorithmKind kind : kinds) {
      for (const UotsQuery& q : *queries) {
        const bool ok = service.TryExecute(q, kind, nullptr,
                                           [&](ExecutionResult r) {
                                             EXPECT_TRUE(r.status.ok());
                                             std::lock_guard<std::mutex> l(mu);
                                             ++done_count;
                                             cv.notify_one();
                                           });
        ASSERT_TRUE(ok);
        ++submitted;
      }
    }
  }
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return done_count == submitted; });
  }
  service.Drain();
  // Even after 96 requests, the free pool never holds more engines of a
  // kind than there are workers to run them.
  size_t total = 0;
  for (AlgorithmKind kind : kinds) {
    const size_t n = service.pooled_engines(kind);
    EXPECT_LE(n, 2u) << ToString(kind);
    EXPECT_GE(n, 1u) << ToString(kind);
    total += n;
  }
  EXPECT_EQ(service.pooled_engines(), total);
}

TEST(ServiceCache, ConcurrentZipfHammerIsBitIdentical) {
  ServiceOptions sopts;
  sopts.threads = 4;
  sopts.max_inflight = 512;
  sopts.cache_max_entries = 64;
  sopts.cache_shards = 4;
  sopts.uots.distance_cache = std::make_shared<DistanceFieldCache>();
  UotsService service(TestDb(), sopts);

  WorkloadOptions wopts;
  wopts.num_queries = 24;
  wopts.num_locations = 3;
  wopts.k = 5;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());

  // Reference answers from plain, uncached runs.
  std::vector<SearchResult> ref;
  for (const UotsQuery& q : *queries) {
    auto r = RunQuery(TestDb(), q, {});
    ASSERT_TRUE(r.ok());
    ref.push_back(*r);
  }

  auto identical = [](const std::vector<ScoredTrajectory>& a,
                      const std::vector<ScoredTrajectory>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id || a[i].score != b[i].score ||
          a[i].spatial_sim != b[i].spatial_sim ||
          a[i].textual_sim != b[i].textual_sim) {
        return false;
      }
    }
    return true;
  };

  // Four client threads follow the server's own probe-then-execute recipe
  // under a Zipf-skewed pick, so hot queries race hits, inserts, and
  // misses concurrently.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::atomic<int> mismatches{0};
  std::atomic<int> hits{0};
  std::mutex mu;
  std::condition_variable cv;
  int done_count = 0;
  int submitted = 0;

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      ZipfSampler zipf(queries->size(), 0.99);
      Rng rng(1234 + static_cast<uint64_t>(t) * 0x9e3779b9ULL);
      for (int i = 0; i < kPerThread; ++i) {
        const size_t qi = zipf.Sample(rng);
        const UotsQuery& q = (*queries)[qi];
        std::string key;
        if (auto hit = service.CacheLookup(q, AlgorithmKind::kUots, &key)) {
          if (!identical(hit->items, ref[qi].items)) ++mismatches;
          ++hits;
          continue;
        }
        // Retry on transient admission refusal (backpressure, not failure).
        for (;;) {
          bool ok = false;
          {
            std::lock_guard<std::mutex> l(mu);
            ok = service.TryExecute(
                q, AlgorithmKind::kUots, nullptr,
                [&, qi](ExecutionResult r) {
                  if (!r.status.ok() ||
                      !identical(r.result.items, ref[qi].items)) {
                    ++mismatches;
                  }
                  std::lock_guard<std::mutex> l2(mu);
                  ++done_count;
                  cv.notify_one();
                },
                key);
            if (ok) ++submitted;
          }
          if (ok) break;
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return done_count == submitted; });
  }
  service.Drain();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(hits.load(), 0);  // Zipf skew guarantees repeats
  ASSERT_NE(service.result_cache(), nullptr);
  EXPECT_GT(service.result_cache()->stats().hits, 0);
}

}  // namespace
}  // namespace uots

// The indexed d-ary heap under the spatial hot paths: property-tested
// against a sorted-multiset oracle, plus the versioned-reset and
// decrease-key invariants the Dijkstra engines rely on.

#include "util/dary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/rng.h"

namespace uots {
namespace {

TEST(DaryHeap, BasicPushPopOrder) {
  DaryHeap<4> heap(8);
  heap.Push(3, 5.0);
  heap.Push(1, 2.0);
  heap.Push(7, 9.0);
  heap.Push(0, 7.0);
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_TRUE(heap.Contains(3));
  EXPECT_FALSE(heap.Contains(2));
  EXPECT_DOUBLE_EQ(heap.Top().key, 2.0);

  std::vector<uint32_t> ids;
  std::vector<double> keys;
  while (!heap.empty()) {
    const auto e = heap.Pop();
    ids.push_back(e.id);
    keys.push_back(e.key);
  }
  EXPECT_EQ(ids, (std::vector<uint32_t>{1, 3, 0, 7}));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(DaryHeap, DecreaseKeyReordersInPlace) {
  DaryHeap<4> heap(8);
  for (uint32_t id = 0; id < 6; ++id) heap.Push(id, 10.0 + id);
  EXPECT_EQ(heap.Top().id, 0u);
  heap.DecreaseKey(5, 1.0);
  EXPECT_EQ(heap.size(), 6u) << "decrease must not add an entry";
  EXPECT_EQ(heap.Top().id, 5u);
  EXPECT_DOUBLE_EQ(heap.KeyOf(5), 1.0);
  // Equal-key decrease is a no-op, not a corruption.
  heap.DecreaseKey(3, 13.0);
  EXPECT_DOUBLE_EQ(heap.KeyOf(3), 13.0);
}

TEST(DaryHeap, PushOrDecreaseReportsInsertion) {
  DaryHeap<4> heap(4);
  EXPECT_TRUE(heap.PushOrDecrease(2, 4.0));
  EXPECT_FALSE(heap.PushOrDecrease(2, 3.0));
  EXPECT_DOUBLE_EQ(heap.KeyOf(2), 3.0);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(DaryHeap, ResetIsO1AndReusable) {
  DaryHeap<4> heap(16);
  for (uint32_t id = 0; id < 16; ++id) heap.Push(id, 100.0 - id);
  heap.Reset();
  EXPECT_TRUE(heap.empty());
  for (uint32_t id = 0; id < 16; ++id) {
    EXPECT_FALSE(heap.Contains(id)) << "id " << id << " survived Reset";
  }
  // Stale slots from the pre-Reset generation must not confuse re-pushes.
  heap.Push(15, 2.0);
  heap.Push(0, 1.0);
  EXPECT_EQ(heap.Pop().id, 0u);
  EXPECT_EQ(heap.Pop().id, 15u);
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeap, PoppedIdMayReenter) {
  DaryHeap<4> heap(4);
  heap.Push(1, 3.0);
  EXPECT_EQ(heap.Pop().id, 1u);
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_TRUE(heap.PushOrDecrease(1, 7.0));  // re-insert, not decrease
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 7.0);
}

// Oracle: id -> key map; the heap must pop an id whose key equals the
// oracle minimum, and agree with the oracle on membership and keys.
class DaryHeapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DaryHeapPropertyTest, RandomOpsMatchOracle) {
  const size_t kUniverse = 300;
  Rng rng(GetParam());
  DaryHeap<4> heap(kUniverse);
  std::map<uint32_t, double> oracle;

  for (int round = 0; round < 5; ++round) {
    for (int op = 0; op < 4000; ++op) {
      const int kind = static_cast<int>(rng.Uniform(10));
      if (kind < 5) {  // push a not-queued id
        const uint32_t id = static_cast<uint32_t>(rng.Uniform(kUniverse));
        if (oracle.count(id)) continue;
        const double key = rng.UniformDouble(0.0, 1000.0);
        EXPECT_TRUE(heap.PushOrDecrease(id, key));
        oracle[id] = key;
      } else if (kind < 8) {  // decrease a queued id
        if (oracle.empty()) continue;
        auto it = oracle.begin();
        std::advance(it, rng.Uniform(oracle.size()));
        const double key = it->second * rng.UniformDouble(0.0, 1.0);
        EXPECT_FALSE(heap.PushOrDecrease(it->first, key));
        it->second = key;
      } else {  // pop the minimum
        ASSERT_EQ(heap.empty(), oracle.empty());
        if (oracle.empty()) continue;
        const auto e = heap.Pop();
        double min_key = oracle.begin()->second;
        for (const auto& [id, key] : oracle) min_key = std::min(min_key, key);
        ASSERT_DOUBLE_EQ(e.key, min_key);
        const auto it = oracle.find(e.id);
        ASSERT_NE(it, oracle.end()) << "popped an id the oracle lost";
        ASSERT_DOUBLE_EQ(it->second, e.key);
        oracle.erase(it);
      }
      ASSERT_EQ(heap.size(), oracle.size());
    }
    // Membership and key agreement across the whole universe.
    for (uint32_t id = 0; id < kUniverse; ++id) {
      const auto it = oracle.find(id);
      ASSERT_EQ(heap.Contains(id), it != oracle.end()) << "id " << id;
      if (it != oracle.end()) {
        ASSERT_DOUBLE_EQ(heap.KeyOf(id), it->second);
      }
    }
    // Drain: nondecreasing keys, every oracle entry accounted for.
    double last = -1.0;
    while (!heap.empty()) {
      const auto e = heap.Pop();
      ASSERT_GE(e.key, last);
      last = e.key;
      const auto it = oracle.find(e.id);
      ASSERT_NE(it, oracle.end());
      ASSERT_DOUBLE_EQ(it->second, e.key);
      oracle.erase(it);
    }
    ASSERT_TRUE(oracle.empty());
    heap.Reset();  // next round reuses the same instance
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DaryHeapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DaryHeap, BinaryArityAlsoWorks) {
  DaryHeap<2> heap(64);
  Rng rng(9);
  for (uint32_t id = 0; id < 64; ++id) {
    heap.Push(id, rng.UniformDouble(0.0, 10.0));
  }
  double last = -1.0;
  while (!heap.empty()) {
    const double key = heap.Pop().key;
    EXPECT_GE(key, last);
    last = key;
  }
}

}  // namespace
}  // namespace uots

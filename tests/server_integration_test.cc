// Loopback integration tests: a real UotsServer on an ephemeral port, real
// BlockingClients over TCP. Covers the acceptance criteria end to end:
// bit-for-bit equivalence with in-process RunQuery, concurrent clients,
// admission-control overload, per-request deadlines, protocol robustness
// against malformed/oversized frames, and graceful shutdown.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/distance_field_cache.h"
#include "core/batch.h"
#include "core/workload.h"
#include "net/generators.h"
#include "server/client.h"
#include "server/http.h"
#include "server/json.h"
#include "server/server.h"
#include "traj/generator.h"

namespace uots {
namespace {

std::unique_ptr<TrajectoryDatabase> MakeTestDb() {
  GridNetworkOptions net_opts;
  net_opts.rows = 18;
  net_opts.cols = 18;
  net_opts.seed = 21;
  auto network = MakeGridNetwork(net_opts);
  EXPECT_TRUE(network.ok());
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 250;
  trip_opts.vocabulary_size = 120;
  trip_opts.seed = 22;
  auto trips = GenerateTrips(*network, trip_opts);
  EXPECT_TRUE(trips.ok());
  return std::make_unique<TrajectoryDatabase>(std::move(*network),
                                              std::move(trips->store),
                                              std::move(trips->vocabulary));
}

/// Server + loop thread with RAII shutdown, bound to an ephemeral port.
class ServerFixture {
 public:
  explicit ServerFixture(const TrajectoryDatabase& db,
                         ServerOptions opts = {}) {
    opts.port = 0;  // ephemeral: tests must never collide on a fixed port
    server_ = std::make_unique<UotsServer>(db, opts);
    Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~ServerFixture() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestShutdown();
      thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  UotsServer& server() { return *server_; }

 private:
  std::unique_ptr<UotsServer> server_;
  std::thread thread_;
};

std::vector<UotsQuery> MakeQueries(const TrajectoryDatabase& db, int n) {
  WorkloadOptions wopts;
  wopts.num_queries = n;
  wopts.num_locations = 4;
  wopts.k = 5;
  wopts.seed = 33;
  auto queries = MakeWorkload(db, wopts);
  EXPECT_TRUE(queries.ok());
  return std::move(*queries);
}

TEST(ServerIntegrationTest, ResultsMatchInProcessBitForBit) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 12);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  for (AlgorithmKind kind :
       {AlgorithmKind::kUots, AlgorithmKind::kBruteForce,
        AlgorithmKind::kTextFirst}) {
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryRequest req;
      req.id = static_cast<int64_t>(i);
      req.query = queries[i];
      req.algorithm = kind;
      req.has_algorithm = true;
      auto remote = client.Call(req);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      ASSERT_TRUE(remote->ok()) << remote->error;
      EXPECT_EQ(remote->id, static_cast<int64_t>(i));

      QueryOptions local_opts;
      local_opts.algorithm = kind;
      auto local = RunQuery(*db, queries[i], local_opts);
      ASSERT_TRUE(local.ok());

      ASSERT_EQ(remote->results.size(), local->items.size())
          << ToString(kind) << " query " << i;
      for (size_t j = 0; j < local->items.size(); ++j) {
        EXPECT_EQ(remote->results[j].id, local->items[j].id);
        // Bitwise equality, not near-equality: the wire protocol's doubles
        // must survive the round trip exactly.
        EXPECT_EQ(remote->results[j].score, local->items[j].score);
        EXPECT_EQ(remote->results[j].spatial_sim, local->items[j].spatial_sim);
        EXPECT_EQ(remote->results[j].textual_sim, local->items[j].textual_sim);
      }
      EXPECT_TRUE(remote->has_stats);
    }
  }
}

TEST(ServerIntegrationTest, ConcurrentClientsAllGetCorrectAnswers) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.threads = 4;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 8);

  // Precompute expected answers in-process.
  std::vector<std::vector<ScoredTrajectory>> expected;
  for (const auto& q : queries) {
    auto local = RunQuery(*db, q);
    ASSERT_TRUE(local.ok());
    expected.push_back(local->items);
  }

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", fx.port()).ok()) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = static_cast<size_t>(t + r) % queries.size();
        QueryRequest req;
        req.id = t * 1000 + r;
        req.query = queries[qi];
        auto resp = client.Call(req);
        if (!resp.ok() || !resp->ok() || resp->id != t * 1000 + r ||
            resp->results.size() != expected[qi].size()) {
          ++failures;
          continue;
        }
        for (size_t j = 0; j < expected[qi].size(); ++j) {
          if (resp->results[j].id != expected[qi][j].id ||
              resp->results[j].score != expected[qi][j].score) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerIntegrationTest, PipelinedRequestsAnswerInOrder) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 5);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  // Queue every request before reading a single response.
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryRequest req;
    req.id = static_cast<int64_t>(100 + i);
    req.query = queries[i];
    ASSERT_TRUE(client.Send(req).ok());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->id, static_cast<int64_t>(100 + i))
        << "responses out of order";
    EXPECT_TRUE(resp->ok());
  }
}

TEST(ServerIntegrationTest, MalformedFrameGetsErrorAndConnectionSurvives) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  QueryRequest good;
  good.id = 1;
  good.query = queries[0];

  // BlockingClient only sends well-formed requests, so drive the malformed
  // frame through a raw socket.
  struct RawConn {
    int fd = -1;
    ~RawConn() {
      if (fd >= 0) ::close(fd);
    }
  };
  RawConn raw;
  raw.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw.fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(raw.fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string bad_frame = EncodeFrame("{not json");
  ASSERT_EQ(::send(raw.fd, bad_frame.data(), bad_frame.size(), 0),
            static_cast<ssize_t>(bad_frame.size()));
  // Read the error response frame off the raw socket.
  FrameDecoder dec;
  std::string payload;
  char buf[4096];
  for (;;) {
    if (dec.Poll(&payload) == FrameDecoder::Next::kFrame) break;
    const ssize_t n = ::recv(raw.fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server dropped the connection on malformed JSON";
    dec.Append(buf, static_cast<size_t>(n));
  }
  auto err = ParseQueryResponse(payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->status, ResponseStatus::kParseError);

  // Same raw connection: a valid request must still be served.
  const std::string good_frame = EncodeFrame(EncodeQueryRequest(good));
  ASSERT_EQ(::send(raw.fd, good_frame.data(), good_frame.size(), 0),
            static_cast<ssize_t>(good_frame.size()));
  for (;;) {
    if (dec.Poll(&payload) == FrameDecoder::Next::kFrame) break;
    const ssize_t n = ::recv(raw.fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection did not survive the malformed frame";
    dec.Append(buf, static_cast<size_t>(n));
  }
  auto ok_resp = ParseQueryResponse(payload);
  ASSERT_TRUE(ok_resp.ok());
  EXPECT_TRUE(ok_resp->ok()) << ok_resp->error;

  // And the unrelated client was never disturbed.
  auto main_resp = client.Call(good);
  ASSERT_TRUE(main_resp.ok());
  EXPECT_TRUE(main_resp->ok());
}

TEST(ServerIntegrationTest, OversizedFrameGetsErrorAndConnectionSurvives) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.max_frame_bytes = 256;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  // A request whose JSON blows past 256 bytes: pad the keyword list.
  QueryRequest big;
  big.id = 5;
  big.query = queries[0];
  std::vector<TermId> many;
  for (TermId t = 0; t < 300; ++t) many.push_back(t);
  big.query.keywords = KeywordSet(std::move(many));
  ASSERT_GT(EncodeQueryRequest(big).size(), 256u);

  ASSERT_TRUE(client.Send(big).ok());
  auto err = client.Receive();
  ASSERT_TRUE(err.ok()) << "server dropped the connection on oversize";
  EXPECT_EQ(err->status, ResponseStatus::kParseError);

  // The connection resynchronized: a small request still succeeds.
  QueryRequest good;
  good.id = 6;
  good.query = queries[0];
  auto resp = client.Call(good);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok()) << resp->error;
  EXPECT_EQ(resp->id, 6);
}

TEST(ServerIntegrationTest, OverloadRejectsWithRetryableStatus) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.threads = 1;
  opts.service.max_inflight = 1;  // one admitted request at a time
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 4);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  // Burst: pipeline far more than the server may admit. With capacity 1,
  // at least one request must be rejected as overloaded, and every frame
  // still gets exactly one response (nothing is silently dropped).
  constexpr int kBurst = 24;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest req;
    req.id = i;
    req.query = queries[static_cast<size_t>(i) % queries.size()];
    ASSERT_TRUE(client.Send(req).ok());
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp->ok()) {
      ++ok;
    } else {
      ASSERT_EQ(resp->status, ResponseStatus::kOverloaded);
      EXPECT_TRUE(resp->retryable());
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GE(ok, 1) << "admission rejected everything";
  EXPECT_GE(overloaded, 1) << "burst of 24 at capacity 1 never overloaded";
}

TEST(ServerIntegrationTest, DeadlineExceededReturnsTimeoutNotHang) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.threads = 1;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 2);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  // An absurdly small deadline: the response must be a prompt timeout.
  QueryRequest req;
  req.id = 77;
  req.query = queries[0];
  req.algorithm = AlgorithmKind::kBruteForce;  // slowest engine
  req.has_algorithm = true;
  req.deadline_ms = 0.01;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(resp->id, 77);

  // The connection is still usable for a normal request afterwards.
  QueryRequest good;
  good.id = 78;
  good.query = queries[1];
  auto resp2 = client.Call(good);
  ASSERT_TRUE(resp2.ok());
  EXPECT_TRUE(resp2->ok()) << resp2->error;
}

TEST(ServerIntegrationTest, CachedRepeatIsBitIdenticalAndFlagged) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.cache_max_entries = 64;
  opts.service.uots.distance_cache = std::make_shared<DistanceFieldCache>();
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 4);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOptions local_opts;
    auto local = RunQuery(*db, queries[i], local_opts);
    ASSERT_TRUE(local.ok());

    QueryRequest req;
    req.id = static_cast<int64_t>(i * 2);
    req.query = queries[i];
    auto first = client.Call(req);
    ASSERT_TRUE(first.ok() && first->ok());
    EXPECT_FALSE(first->cached) << "first sighting cannot be a cache hit";

    req.id = static_cast<int64_t>(i * 2 + 1);
    auto second = client.Call(req);
    ASSERT_TRUE(second.ok() && second->ok());
    EXPECT_TRUE(second->cached) << "identical repeat must hit the cache";
    EXPECT_TRUE(second->has_stats);

    // Both answers match the in-process run bit for bit.
    for (const auto* resp : {&first.value(), &second.value()}) {
      ASSERT_EQ(resp->results.size(), local->items.size());
      for (size_t j = 0; j < local->items.size(); ++j) {
        EXPECT_EQ(resp->results[j].id, local->items[j].id);
        EXPECT_EQ(resp->results[j].score, local->items[j].score);
        EXPECT_EQ(resp->results[j].spatial_sim, local->items[j].spatial_sim);
        EXPECT_EQ(resp->results[j].textual_sim, local->items[j].textual_sim);
      }
    }
  }
  fx.Stop();
  EXPECT_EQ(fx.server().counters().cache_hits,
            static_cast<int64_t>(queries.size()));
}

TEST(ServerIntegrationTest, BypassSkipsTheResultCache) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.cache_max_entries = 64;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  auto warm = client.Call(req);  // populates the cache
  ASSERT_TRUE(warm.ok() && warm->ok());

  req.id = 2;
  req.cache = CacheMode::kBypass;
  auto bypass = client.Call(req);
  ASSERT_TRUE(bypass.ok() && bypass->ok());
  EXPECT_FALSE(bypass->cached) << "bypass must recompute";
  // Recomputation agrees with the cached answer bit for bit.
  ASSERT_EQ(bypass->results.size(), warm->results.size());
  for (size_t j = 0; j < warm->results.size(); ++j) {
    EXPECT_EQ(bypass->results[j].id, warm->results[j].id);
    EXPECT_EQ(bypass->results[j].score, warm->results[j].score);
  }

  req.id = 3;
  req.cache = CacheMode::kDefault;
  auto hit = client.Call(req);
  ASSERT_TRUE(hit.ok() && hit->ok());
  EXPECT_TRUE(hit->cached) << "the entry must still be there after a bypass";
}

TEST(ServerIntegrationTest, EvictionCycleStaysCorrect) {
  auto db = MakeTestDb();
  ServerOptions opts;
  // A one-entry, one-shard cache: alternating two queries evicts on every
  // request, exercising the insert/evict/lookup cycle end to end.
  opts.service.cache_max_entries = 1;
  opts.service.cache_shards = 1;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 2);

  std::vector<std::vector<ScoredTrajectory>> expected;
  for (const auto& q : queries) {
    auto local = RunQuery(*db, q);
    ASSERT_TRUE(local.ok());
    expected.push_back(local->items);
  }

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  int64_t id = 0;
  for (int round = 0; round < 3; ++round) {
    for (size_t qi = 0; qi < 2; ++qi) {
      QueryRequest req;
      req.id = ++id;
      req.query = queries[qi];
      auto resp = client.Call(req);
      ASSERT_TRUE(resp.ok() && resp->ok());
      EXPECT_FALSE(resp->cached) << "evicted entry served as a hit";
      ASSERT_EQ(resp->results.size(), expected[qi].size());
      for (size_t j = 0; j < expected[qi].size(); ++j) {
        EXPECT_EQ(resp->results[j].id, expected[qi][j].id);
        EXPECT_EQ(resp->results[j].score, expected[qi][j].score);
      }
    }
  }
  // Back-to-back repeats of the same query DO hit the surviving entry.
  QueryRequest req;
  req.id = ++id;
  req.query = queries[1];
  auto repeat = client.Call(req);
  ASSERT_TRUE(repeat.ok() && repeat->ok());
  EXPECT_TRUE(repeat->cached);

  ASSERT_NE(fx.server().service().result_cache(), nullptr);
  const ResultCache::Stats s = fx.server().service().result_cache()->stats();
  EXPECT_GE(s.evictions, 5);
  EXPECT_EQ(s.entries, 1);
}

TEST(ServerIntegrationTest, GracefulShutdownDrainsAndStops) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->ok());

  fx.Stop();  // RequestShutdown + join: must terminate, not hang

  // New connections are refused after shutdown.
  BlockingClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", fx.port()).ok());
  EXPECT_EQ(fx.server().counters().responses_ok, 1);
}

TEST(ServerIntegrationTest, RequestsDuringDrainGetShuttingDown) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  // Make sure the connection is established server-side first.
  QueryRequest warm;
  warm.id = 0;
  warm.query = queries[0];
  ASSERT_TRUE(client.Call(warm).ok());

  // Race a request against shutdown: the server may answer ok (if it ran
  // before the drain flag), answer shutting_down, or close the connection
  // (if drain finished first) — but it must never hang.
  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  ASSERT_TRUE(client.Send(req).ok());
  fx.server().RequestShutdown();
  auto resp = client.Receive();
  if (resp.ok()) {
    EXPECT_TRUE(resp->ok() || resp->status == ResponseStatus::kShuttingDown)
        << ToString(resp->status);
  }
  fx.Stop();
}

// --- admin plane -----------------------------------------------------------

ServerOptions WithAdmin(ServerOptions opts = {}) {
  opts.admin.port = 0;  // ephemeral, like the query port
  return opts;
}

/// One admin-plane GET; fails the test on transport errors.
HttpFetchResult AdminGet(uint16_t admin_port, const std::string& path,
                         const std::string& method = "GET") {
  auto fetched = HttpFetch("127.0.0.1", admin_port, path, method);
  EXPECT_TRUE(fetched.ok()) << path << ": " << fetched.status().ToString();
  return fetched.ok() ? *fetched : HttpFetchResult{};
}

TEST(AdminIntegrationTest, MetricsServeLiveAndStayMonotonicUnderLoad) {
  auto db = MakeTestDb();
  ServerOptions opts = WithAdmin();
  opts.service.threads = 2;
  ServerFixture fx(*db, opts);
  const uint16_t admin_port = fx.server().admin_port();
  ASSERT_GT(admin_port, 0);
  const auto queries = MakeQueries(*db, 8);

  // Counters are served before the first request ever arrives.
  auto first = AdminGet(admin_port, "/metrics");
  ASSERT_EQ(first.status, 200);
  double requests_before = -1.0;
  ASSERT_TRUE(promtext::FindValue(first.body, "uots_server_requests_total",
                                  &requests_before));
  EXPECT_DOUBLE_EQ(requests_before, 0.0);
  // The latency histogram lives in the process-global metrics registry, so
  // other tests in this binary may already have populated it: diff it.
  double latency_count_before = 0.0;
  promtext::FindValue(first.body, "uots_server_request_latency_seconds_count",
                      &latency_count_before);

  // Scrape concurrently with query load; every sample must be monotone.
  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 15;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", fx.port()).ok()) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        QueryRequest req;
        req.id = t * 100 + r;
        req.query = queries[static_cast<size_t>(t + r) % queries.size()];
        auto resp = client.Call(req);
        if (!resp.ok() || !resp->ok()) ++failures;
      }
    });
  }
  double last_requests = 0.0;
  auto prev_buckets = promtext::ParseHistogramBuckets(
      first.body, "uots_server_request_latency_seconds");
  for (int scrape = 0; scrape < 5; ++scrape) {
    const auto mid = AdminGet(admin_port, "/metrics");
    ASSERT_EQ(mid.status, 200);
    double v = 0.0;
    ASSERT_TRUE(
        promtext::FindValue(mid.body, "uots_server_requests_total", &v));
    EXPECT_GE(v, last_requests) << "requests_total went backwards";
    last_requests = v;
    const auto buckets = promtext::ParseHistogramBuckets(
        mid.body, "uots_server_request_latency_seconds");
    if (!prev_buckets.empty() && buckets.size() == prev_buckets.size()) {
      for (size_t i = 0; i < buckets.size(); ++i) {
        EXPECT_GE(buckets[i].cumulative, prev_buckets[i].cumulative)
            << "bucket le=" << buckets[i].le_seconds << " went backwards";
      }
    }
    prev_buckets = buckets;
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // After the load has fully drained, the scrape is exact, not eventual:
  // cache metrics are published at scrape time.
  const auto after = AdminGet(admin_port, "/metrics");
  double requests_after = 0.0, latency_count = 0.0;
  ASSERT_TRUE(promtext::FindValue(after.body, "uots_server_requests_total",
                                  &requests_after));
  EXPECT_DOUBLE_EQ(requests_after,
                   static_cast<double>(kClients * kRequestsPerClient));
  ASSERT_TRUE(promtext::FindValue(
      after.body, "uots_server_request_latency_seconds_count",
      &latency_count));
  EXPECT_DOUBLE_EQ(latency_count - latency_count_before,
                   static_cast<double>(kClients * kRequestsPerClient));
}

TEST(AdminIntegrationTest, StatuszReportsDatasetAndServerState) {
  auto db = MakeTestDb();
  ServerFixture fx(*db, WithAdmin());
  const uint16_t admin_port = fx.server().admin_port();
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  ASSERT_TRUE(client.Call(req).ok());

  const auto page = AdminGet(admin_port, "/statusz");
  ASSERT_EQ(page.status, 200);
  auto root = ParseJson(page.body);
  ASSERT_TRUE(root.ok()) << root.status().ToString();

  const JsonValue* dataset = root->Find("dataset");
  ASSERT_NE(dataset, nullptr);
  EXPECT_EQ(dataset->Find("vertices")->number_value(), 18 * 18);
  EXPECT_EQ(dataset->Find("trajectories")->number_value(), 250);
  EXPECT_EQ(dataset->Find("fingerprint")->string_value().substr(0, 2), "0x");

  const JsonValue* srv = root->Find("server");
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(srv->Find("port")->number_value(), fx.port());
  EXPECT_EQ(srv->Find("admin_port")->number_value(), admin_port);
  EXPECT_FALSE(srv->Find("draining")->bool_value());

  const JsonValue* counters = root->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->Find("requests")->number_value(), 1.0);
  EXPECT_GE(root->Find("uptime_seconds")->number_value(), 0.0);
}

TEST(AdminIntegrationTest, HealthzFlipsToNotReadyDuringDrain) {
  // A larger city than MakeTestDb(): each brute-force query must take long
  // enough that a backlog of them holds the drain open for a comfortable
  // probe window even on a loaded machine.
  GridNetworkOptions net_opts;
  net_opts.rows = 40;
  net_opts.cols = 40;
  net_opts.seed = 23;
  auto network = MakeGridNetwork(net_opts);
  ASSERT_TRUE(network.ok());
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 2000;
  trip_opts.vocabulary_size = 160;
  trip_opts.seed = 24;
  auto trips = GenerateTrips(*network, trip_opts);
  ASSERT_TRUE(trips.ok());
  auto db = std::make_unique<TrajectoryDatabase>(std::move(*network),
                                                 std::move(trips->store),
                                                 std::move(trips->vocabulary));

  ServerOptions opts = WithAdmin();
  opts.service.threads = 1;  // serialize execution to hold the drain open
  opts.service.max_inflight = 4096;  // admit the whole backlog
  ServerFixture fx(*db, opts);
  const uint16_t admin_port = fx.server().admin_port();
  const auto queries = MakeQueries(*db, 4);

  const auto ready = AdminGet(admin_port, "/healthz");
  EXPECT_EQ(ready.status, 200);
  EXPECT_EQ(ready.body, "ok\n");

  // Pipeline a pile of slow (brute-force) queries without reading a single
  // response, then start the drain: the admitted backlog keeps the server
  // draining long enough to observe the not-ready flip.
  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  constexpr int kBacklog = 600;
  for (int i = 0; i < kBacklog; ++i) {
    QueryRequest req;
    req.id = i;
    req.query = queries[static_cast<size_t>(i) % queries.size()];
    req.algorithm = AlgorithmKind::kBruteForce;
    req.has_algorithm = true;
    ASSERT_TRUE(client.Send(req).ok());
  }
  // The burst is only wire bytes until the reactor reads and admits it —
  // shutting down before that would reject everything instantly and close
  // the drain window we are trying to observe. Wait until /statusz shows a
  // deep executor queue before pulling the trigger.
  bool queued = false;
  for (int attempt = 0; attempt < 2000 && !queued; ++attempt) {
    const auto statusz = AdminGet(admin_port, "/statusz");
    ASSERT_EQ(statusz.status, 200);
    auto root = ParseJson(statusz.body);
    ASSERT_TRUE(root.ok());
    queued = root->Find("server")->Find("executor_queue_depth")
                 ->number_value() >= kBacklog / 2;
  }
  ASSERT_TRUE(queued) << "backlog never reached the executor queue";
  fx.server().RequestShutdown();

  bool saw_draining = false;
  for (int attempt = 0; attempt < 2000 && !saw_draining; ++attempt) {
    auto probe = HttpFetch("127.0.0.1", admin_port, "/healthz");
    if (!probe.ok()) break;  // drain finished, admin closed
    if (probe->status == 503) {
      EXPECT_EQ(probe->body, "draining\n");
      saw_draining = true;
    }
  }
  EXPECT_TRUE(saw_draining)
      << "admin plane never reported 503 while the server drained";
  fx.Stop();
}

TEST(AdminIntegrationTest, RequestIdsEchoByteForByte) {
  auto db = MakeTestDb();
  ServerFixture fx(*db, WithAdmin());
  const auto queries = MakeQueries(*db, 2);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  // Client-supplied id comes back verbatim.
  QueryRequest req;
  req.id = 1;
  req.request_id = "trip-planner/42 [shard_7]";
  req.query = queries[0];
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok() && resp->ok());
  EXPECT_EQ(resp->request_id, "trip-planner/42 [shard_7]");

  // Without one, the server generates a unique id of its documented shape.
  QueryRequest anon;
  anon.id = 2;
  anon.query = queries[0];
  auto first = client.Call(anon);
  anon.id = 3;
  auto second = client.Call(anon);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_FALSE(first->request_id.empty());
  EXPECT_EQ(first->request_id[0], 's');
  EXPECT_NE(first->request_id.find('-'), std::string::npos);
  EXPECT_NE(first->request_id, second->request_id);

  // Error responses carry the id too.
  QueryRequest dl;
  dl.id = 4;
  dl.request_id = "deadline-probe";
  dl.query = queries[1];
  dl.algorithm = AlgorithmKind::kBruteForce;
  dl.has_algorithm = true;
  dl.deadline_ms = 0.01;
  auto timed_out = client.Call(dl);
  ASSERT_TRUE(timed_out.ok());
  EXPECT_EQ(timed_out->status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(timed_out->request_id, "deadline-probe");
}

TEST(AdminIntegrationTest, SlowQueryLogRecordsPhaseBreakdown) {
  auto db = MakeTestDb();
  ServerFixture fx(*db, WithAdmin());
  const uint16_t admin_port = fx.server().admin_port();
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  QueryRequest req;
  req.id = 9;
  req.request_id = "slow-marker";
  req.query = queries[0];
  req.algorithm = AlgorithmKind::kBruteForce;  // deliberately slow
  req.has_algorithm = true;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok() && resp->ok());

  const auto page = AdminGet(admin_port, "/slowqueries");
  ASSERT_EQ(page.status, 200);
  auto root = ParseJson(page.body);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_GE(root->Find("added")->number_value(), 1.0);

  const JsonValue* recent = root->Find("recent");
  ASSERT_NE(recent, nullptr);
  const JsonValue* entry = nullptr;
  for (const JsonValue& e : recent->array_items()) {
    if (e.Find("request_id")->string_value() == "slow-marker") entry = &e;
  }
  ASSERT_NE(entry, nullptr) << "slow query missing from /slowqueries";
  EXPECT_EQ(entry->Find("algorithm")->string_value(), "BF");
  EXPECT_EQ(entry->Find("status")->string_value(), "ok");
  EXPECT_NE(entry->Find("query")->string_value().find("locs=4"),
            std::string::npos);
  EXPECT_GT(entry->Find("total_ms")->number_value(), 0.0);
  const JsonValue* stats = entry->Find("stats");
  ASSERT_NE(stats, nullptr);
  const JsonValue* phases = stats->Find("phase_ms");
  ASSERT_NE(phases, nullptr) << "per-phase breakdown missing";
  EXPECT_FALSE(phases->object_items().empty());
}

TEST(AdminIntegrationTest, MalformedAdminHttpDoesNotDisturbQueries) {
  auto db = MakeTestDb();
  ServerFixture fx(*db, WithAdmin());
  const uint16_t admin_port = fx.server().admin_port();
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  ASSERT_TRUE(client.Call(req).ok());

  struct RawConn {
    int fd = -1;
    ~RawConn() {
      if (fd >= 0) ::close(fd);
    }
    bool Connect(uint16_t port) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return false;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      return ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0;
    }
    std::string Transact(const std::string& bytes) {
      EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
                static_cast<ssize_t>(bytes.size()));
      std::string got;
      char buf[4096];
      for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;  // admin closes after every response
        got.append(buf, static_cast<size_t>(n));
      }
      return got;
    }
  };

  // A query-protocol client that dialed the wrong port gets a clean 400.
  RawConn garbage;
  ASSERT_TRUE(garbage.Connect(admin_port));
  const std::string got400 =
      garbage.Transact(std::string("\x00\x00\x01\x00", 4) +
                       "{\"id\":1}\r\n\r\n");
  EXPECT_EQ(got400.find("HTTP/1.0 400"), 0u) << got400.substr(0, 64);

  // Oversized header block gets 431 even without a terminator.
  RawConn huge;
  ASSERT_TRUE(huge.Connect(admin_port));
  std::string big = "GET /metrics HTTP/1.0\r\nX-Pad: ";
  big.append(kMaxHttpHeaderBytes + 1024, 'a');
  const std::string got431 = huge.Transact(big);
  EXPECT_EQ(got431.find("HTTP/1.0 431"), 0u) << got431.substr(0, 64);

  // Unknown paths and unsupported methods answer without closing the plane.
  EXPECT_EQ(AdminGet(admin_port, "/nope").status, 404);
  EXPECT_EQ(AdminGet(admin_port, "/metrics", "PUT").status, 405);

  // Neither the query connection nor the admin plane was disturbed.
  req.id = 2;
  auto after = client.Call(req);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->ok());
  EXPECT_EQ(AdminGet(admin_port, "/healthz").status, 200);
}

TEST(AdminIntegrationTest, TracingSamplesSpansIntoSlowLog) {
  auto db = MakeTestDb();
  ServerFixture fx(*db, WithAdmin());
  const uint16_t admin_port = fx.server().admin_port();
  const auto queries = MakeQueries(*db, 1);

  // Sampling starts disabled and is settable at runtime over HTTP.
  auto off = AdminGet(admin_port, "/tracing");
  ASSERT_EQ(off.status, 200);
  EXPECT_NE(off.body.find("\"sample_every\":0"), std::string::npos);
  EXPECT_EQ(AdminGet(admin_port, "/tracing", "POST").status, 400)
      << "missing sample= must be rejected";
  auto on = AdminGet(admin_port, "/tracing?sample=1", "POST");
  ASSERT_EQ(on.status, 200);
  EXPECT_NE(on.body.find("\"sample_every\":1"), std::string::npos);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  QueryRequest req;
  req.id = 1;
  req.request_id = "sampled-req";
  req.query = queries[0];
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok() && resp->ok());

  const auto page = AdminGet(admin_port, "/slowqueries");
  ASSERT_EQ(page.status, 200);
  auto root = ParseJson(page.body);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  const JsonValue* entry = nullptr;
  for (const JsonValue& e : root->Find("recent")->array_items()) {
    if (e.Find("request_id")->string_value() == "sampled-req") entry = &e;
  }
  ASSERT_NE(entry, nullptr);
#if UOTS_TRACE
  // Every request is sampled at sample=1: the span tree must be attached.
  const JsonValue* spans = entry->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_FALSE(spans->array_items().empty()) << "no spans captured";
  bool saw_execute = false;
  for (const JsonValue& s : spans->array_items()) {
    if (s.Find("name")->string_value() == "server_execute") saw_execute = true;
    EXPECT_GE(s.Find("dur_us")->number_value(), 0.0);
  }
  EXPECT_TRUE(saw_execute) << "server_execute root span missing";
#else
  EXPECT_TRUE(entry->Find("spans")->array_items().empty());
#endif

  // Turning sampling back off stops capture for later requests.
  ASSERT_EQ(AdminGet(admin_port, "/tracing?sample=0", "POST").status, 200);
  req.id = 2;
  req.request_id = "unsampled-req";
  ASSERT_TRUE(client.Call(req).ok());
  auto page2 = AdminGet(admin_port, "/slowqueries");
  auto root2 = ParseJson(page2.body);
  ASSERT_TRUE(root2.ok());
  for (const JsonValue& e : root2->Find("recent")->array_items()) {
    if (e.Find("request_id")->string_value() == "unsampled-req") {
      EXPECT_TRUE(e.Find("spans")->array_items().empty());
    }
  }
}

}  // namespace
}  // namespace uots

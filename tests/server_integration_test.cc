// Loopback integration tests: a real UotsServer on an ephemeral port, real
// BlockingClients over TCP. Covers the acceptance criteria end to end:
// bit-for-bit equivalence with in-process RunQuery, concurrent clients,
// admission-control overload, per-request deadlines, protocol robustness
// against malformed/oversized frames, and graceful shutdown.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/distance_field_cache.h"
#include "core/batch.h"
#include "core/workload.h"
#include "net/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "traj/generator.h"

namespace uots {
namespace {

std::unique_ptr<TrajectoryDatabase> MakeTestDb() {
  GridNetworkOptions net_opts;
  net_opts.rows = 18;
  net_opts.cols = 18;
  net_opts.seed = 21;
  auto network = MakeGridNetwork(net_opts);
  EXPECT_TRUE(network.ok());
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 250;
  trip_opts.vocabulary_size = 120;
  trip_opts.seed = 22;
  auto trips = GenerateTrips(*network, trip_opts);
  EXPECT_TRUE(trips.ok());
  return std::make_unique<TrajectoryDatabase>(std::move(*network),
                                              std::move(trips->store),
                                              std::move(trips->vocabulary));
}

/// Server + loop thread with RAII shutdown, bound to an ephemeral port.
class ServerFixture {
 public:
  explicit ServerFixture(const TrajectoryDatabase& db,
                         ServerOptions opts = {}) {
    opts.port = 0;  // ephemeral: tests must never collide on a fixed port
    server_ = std::make_unique<UotsServer>(db, opts);
    Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~ServerFixture() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      server_->RequestShutdown();
      thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  UotsServer& server() { return *server_; }

 private:
  std::unique_ptr<UotsServer> server_;
  std::thread thread_;
};

std::vector<UotsQuery> MakeQueries(const TrajectoryDatabase& db, int n) {
  WorkloadOptions wopts;
  wopts.num_queries = n;
  wopts.num_locations = 4;
  wopts.k = 5;
  wopts.seed = 33;
  auto queries = MakeWorkload(db, wopts);
  EXPECT_TRUE(queries.ok());
  return std::move(*queries);
}

TEST(ServerIntegrationTest, ResultsMatchInProcessBitForBit) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 12);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  for (AlgorithmKind kind :
       {AlgorithmKind::kUots, AlgorithmKind::kBruteForce,
        AlgorithmKind::kTextFirst}) {
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryRequest req;
      req.id = static_cast<int64_t>(i);
      req.query = queries[i];
      req.algorithm = kind;
      req.has_algorithm = true;
      auto remote = client.Call(req);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      ASSERT_TRUE(remote->ok()) << remote->error;
      EXPECT_EQ(remote->id, static_cast<int64_t>(i));

      QueryOptions local_opts;
      local_opts.algorithm = kind;
      auto local = RunQuery(*db, queries[i], local_opts);
      ASSERT_TRUE(local.ok());

      ASSERT_EQ(remote->results.size(), local->items.size())
          << ToString(kind) << " query " << i;
      for (size_t j = 0; j < local->items.size(); ++j) {
        EXPECT_EQ(remote->results[j].id, local->items[j].id);
        // Bitwise equality, not near-equality: the wire protocol's doubles
        // must survive the round trip exactly.
        EXPECT_EQ(remote->results[j].score, local->items[j].score);
        EXPECT_EQ(remote->results[j].spatial_sim, local->items[j].spatial_sim);
        EXPECT_EQ(remote->results[j].textual_sim, local->items[j].textual_sim);
      }
      EXPECT_TRUE(remote->has_stats);
    }
  }
}

TEST(ServerIntegrationTest, ConcurrentClientsAllGetCorrectAnswers) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.threads = 4;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 8);

  // Precompute expected answers in-process.
  std::vector<std::vector<ScoredTrajectory>> expected;
  for (const auto& q : queries) {
    auto local = RunQuery(*db, q);
    ASSERT_TRUE(local.ok());
    expected.push_back(local->items);
  }

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      BlockingClient client;
      if (!client.Connect("127.0.0.1", fx.port()).ok()) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = static_cast<size_t>(t + r) % queries.size();
        QueryRequest req;
        req.id = t * 1000 + r;
        req.query = queries[qi];
        auto resp = client.Call(req);
        if (!resp.ok() || !resp->ok() || resp->id != t * 1000 + r ||
            resp->results.size() != expected[qi].size()) {
          ++failures;
          continue;
        }
        for (size_t j = 0; j < expected[qi].size(); ++j) {
          if (resp->results[j].id != expected[qi][j].id ||
              resp->results[j].score != expected[qi][j].score) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerIntegrationTest, PipelinedRequestsAnswerInOrder) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 5);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  // Queue every request before reading a single response.
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryRequest req;
    req.id = static_cast<int64_t>(100 + i);
    req.query = queries[i];
    ASSERT_TRUE(client.Send(req).ok());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->id, static_cast<int64_t>(100 + i))
        << "responses out of order";
    EXPECT_TRUE(resp->ok());
  }
}

TEST(ServerIntegrationTest, MalformedFrameGetsErrorAndConnectionSurvives) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  QueryRequest good;
  good.id = 1;
  good.query = queries[0];

  // BlockingClient only sends well-formed requests, so drive the malformed
  // frame through a raw socket.
  struct RawConn {
    int fd = -1;
    ~RawConn() {
      if (fd >= 0) ::close(fd);
    }
  };
  RawConn raw;
  raw.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw.fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(raw.fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string bad_frame = EncodeFrame("{not json");
  ASSERT_EQ(::send(raw.fd, bad_frame.data(), bad_frame.size(), 0),
            static_cast<ssize_t>(bad_frame.size()));
  // Read the error response frame off the raw socket.
  FrameDecoder dec;
  std::string payload;
  char buf[4096];
  for (;;) {
    if (dec.Poll(&payload) == FrameDecoder::Next::kFrame) break;
    const ssize_t n = ::recv(raw.fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server dropped the connection on malformed JSON";
    dec.Append(buf, static_cast<size_t>(n));
  }
  auto err = ParseQueryResponse(payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->status, ResponseStatus::kParseError);

  // Same raw connection: a valid request must still be served.
  const std::string good_frame = EncodeFrame(EncodeQueryRequest(good));
  ASSERT_EQ(::send(raw.fd, good_frame.data(), good_frame.size(), 0),
            static_cast<ssize_t>(good_frame.size()));
  for (;;) {
    if (dec.Poll(&payload) == FrameDecoder::Next::kFrame) break;
    const ssize_t n = ::recv(raw.fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "connection did not survive the malformed frame";
    dec.Append(buf, static_cast<size_t>(n));
  }
  auto ok_resp = ParseQueryResponse(payload);
  ASSERT_TRUE(ok_resp.ok());
  EXPECT_TRUE(ok_resp->ok()) << ok_resp->error;

  // And the unrelated client was never disturbed.
  auto main_resp = client.Call(good);
  ASSERT_TRUE(main_resp.ok());
  EXPECT_TRUE(main_resp->ok());
}

TEST(ServerIntegrationTest, OversizedFrameGetsErrorAndConnectionSurvives) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.max_frame_bytes = 256;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  // A request whose JSON blows past 256 bytes: pad the keyword list.
  QueryRequest big;
  big.id = 5;
  big.query = queries[0];
  std::vector<TermId> many;
  for (TermId t = 0; t < 300; ++t) many.push_back(t);
  big.query.keywords = KeywordSet(std::move(many));
  ASSERT_GT(EncodeQueryRequest(big).size(), 256u);

  ASSERT_TRUE(client.Send(big).ok());
  auto err = client.Receive();
  ASSERT_TRUE(err.ok()) << "server dropped the connection on oversize";
  EXPECT_EQ(err->status, ResponseStatus::kParseError);

  // The connection resynchronized: a small request still succeeds.
  QueryRequest good;
  good.id = 6;
  good.query = queries[0];
  auto resp = client.Call(good);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok()) << resp->error;
  EXPECT_EQ(resp->id, 6);
}

TEST(ServerIntegrationTest, OverloadRejectsWithRetryableStatus) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.threads = 1;
  opts.service.max_inflight = 1;  // one admitted request at a time
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 4);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  // Burst: pipeline far more than the server may admit. With capacity 1,
  // at least one request must be rejected as overloaded, and every frame
  // still gets exactly one response (nothing is silently dropped).
  constexpr int kBurst = 24;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest req;
    req.id = i;
    req.query = queries[static_cast<size_t>(i) % queries.size()];
    ASSERT_TRUE(client.Send(req).ok());
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp->ok()) {
      ++ok;
    } else {
      ASSERT_EQ(resp->status, ResponseStatus::kOverloaded);
      EXPECT_TRUE(resp->retryable());
      ++overloaded;
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GE(ok, 1) << "admission rejected everything";
  EXPECT_GE(overloaded, 1) << "burst of 24 at capacity 1 never overloaded";
}

TEST(ServerIntegrationTest, DeadlineExceededReturnsTimeoutNotHang) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.threads = 1;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 2);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  // An absurdly small deadline: the response must be a prompt timeout.
  QueryRequest req;
  req.id = 77;
  req.query = queries[0];
  req.algorithm = AlgorithmKind::kBruteForce;  // slowest engine
  req.has_algorithm = true;
  req.deadline_ms = 0.01;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(resp->id, 77);

  // The connection is still usable for a normal request afterwards.
  QueryRequest good;
  good.id = 78;
  good.query = queries[1];
  auto resp2 = client.Call(good);
  ASSERT_TRUE(resp2.ok());
  EXPECT_TRUE(resp2->ok()) << resp2->error;
}

TEST(ServerIntegrationTest, CachedRepeatIsBitIdenticalAndFlagged) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.cache_max_entries = 64;
  opts.service.uots.distance_cache = std::make_shared<DistanceFieldCache>();
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 4);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOptions local_opts;
    auto local = RunQuery(*db, queries[i], local_opts);
    ASSERT_TRUE(local.ok());

    QueryRequest req;
    req.id = static_cast<int64_t>(i * 2);
    req.query = queries[i];
    auto first = client.Call(req);
    ASSERT_TRUE(first.ok() && first->ok());
    EXPECT_FALSE(first->cached) << "first sighting cannot be a cache hit";

    req.id = static_cast<int64_t>(i * 2 + 1);
    auto second = client.Call(req);
    ASSERT_TRUE(second.ok() && second->ok());
    EXPECT_TRUE(second->cached) << "identical repeat must hit the cache";
    EXPECT_TRUE(second->has_stats);

    // Both answers match the in-process run bit for bit.
    for (const auto* resp : {&first.value(), &second.value()}) {
      ASSERT_EQ(resp->results.size(), local->items.size());
      for (size_t j = 0; j < local->items.size(); ++j) {
        EXPECT_EQ(resp->results[j].id, local->items[j].id);
        EXPECT_EQ(resp->results[j].score, local->items[j].score);
        EXPECT_EQ(resp->results[j].spatial_sim, local->items[j].spatial_sim);
        EXPECT_EQ(resp->results[j].textual_sim, local->items[j].textual_sim);
      }
    }
  }
  fx.Stop();
  EXPECT_EQ(fx.server().counters().cache_hits,
            static_cast<int64_t>(queries.size()));
}

TEST(ServerIntegrationTest, BypassSkipsTheResultCache) {
  auto db = MakeTestDb();
  ServerOptions opts;
  opts.service.cache_max_entries = 64;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  auto warm = client.Call(req);  // populates the cache
  ASSERT_TRUE(warm.ok() && warm->ok());

  req.id = 2;
  req.cache = CacheMode::kBypass;
  auto bypass = client.Call(req);
  ASSERT_TRUE(bypass.ok() && bypass->ok());
  EXPECT_FALSE(bypass->cached) << "bypass must recompute";
  // Recomputation agrees with the cached answer bit for bit.
  ASSERT_EQ(bypass->results.size(), warm->results.size());
  for (size_t j = 0; j < warm->results.size(); ++j) {
    EXPECT_EQ(bypass->results[j].id, warm->results[j].id);
    EXPECT_EQ(bypass->results[j].score, warm->results[j].score);
  }

  req.id = 3;
  req.cache = CacheMode::kDefault;
  auto hit = client.Call(req);
  ASSERT_TRUE(hit.ok() && hit->ok());
  EXPECT_TRUE(hit->cached) << "the entry must still be there after a bypass";
}

TEST(ServerIntegrationTest, EvictionCycleStaysCorrect) {
  auto db = MakeTestDb();
  ServerOptions opts;
  // A one-entry, one-shard cache: alternating two queries evicts on every
  // request, exercising the insert/evict/lookup cycle end to end.
  opts.service.cache_max_entries = 1;
  opts.service.cache_shards = 1;
  ServerFixture fx(*db, opts);
  const auto queries = MakeQueries(*db, 2);

  std::vector<std::vector<ScoredTrajectory>> expected;
  for (const auto& q : queries) {
    auto local = RunQuery(*db, q);
    ASSERT_TRUE(local.ok());
    expected.push_back(local->items);
  }

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());

  int64_t id = 0;
  for (int round = 0; round < 3; ++round) {
    for (size_t qi = 0; qi < 2; ++qi) {
      QueryRequest req;
      req.id = ++id;
      req.query = queries[qi];
      auto resp = client.Call(req);
      ASSERT_TRUE(resp.ok() && resp->ok());
      EXPECT_FALSE(resp->cached) << "evicted entry served as a hit";
      ASSERT_EQ(resp->results.size(), expected[qi].size());
      for (size_t j = 0; j < expected[qi].size(); ++j) {
        EXPECT_EQ(resp->results[j].id, expected[qi][j].id);
        EXPECT_EQ(resp->results[j].score, expected[qi][j].score);
      }
    }
  }
  // Back-to-back repeats of the same query DO hit the surviving entry.
  QueryRequest req;
  req.id = ++id;
  req.query = queries[1];
  auto repeat = client.Call(req);
  ASSERT_TRUE(repeat.ok() && repeat->ok());
  EXPECT_TRUE(repeat->cached);

  ASSERT_NE(fx.server().service().result_cache(), nullptr);
  const ResultCache::Stats s = fx.server().service().result_cache()->stats();
  EXPECT_GE(s.evictions, 5);
  EXPECT_EQ(s.entries, 1);
}

TEST(ServerIntegrationTest, GracefulShutdownDrainsAndStops) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->ok());

  fx.Stop();  // RequestShutdown + join: must terminate, not hang

  // New connections are refused after shutdown.
  BlockingClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", fx.port()).ok());
  EXPECT_EQ(fx.server().counters().responses_ok, 1);
}

TEST(ServerIntegrationTest, RequestsDuringDrainGetShuttingDown) {
  auto db = MakeTestDb();
  ServerFixture fx(*db);
  const auto queries = MakeQueries(*db, 1);

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
  // Make sure the connection is established server-side first.
  QueryRequest warm;
  warm.id = 0;
  warm.query = queries[0];
  ASSERT_TRUE(client.Call(warm).ok());

  // Race a request against shutdown: the server may answer ok (if it ran
  // before the drain flag), answer shutting_down, or close the connection
  // (if drain finished first) — but it must never hang.
  QueryRequest req;
  req.id = 1;
  req.query = queries[0];
  ASSERT_TRUE(client.Send(req).ok());
  fx.server().RequestShutdown();
  auto resp = client.Receive();
  if (resp.ok()) {
    EXPECT_TRUE(resp->ok() || resp->status == ResponseStatus::kShuttingDown)
        << ToString(resp->status);
  }
  fx.Stop();
}

}  // namespace
}  // namespace uots

// Timeline index, temporal expansion, and the three-domain search.

#include "core/temporal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "net/generators.h"
#include "traj/generator.h"
#include "util/rng.h"

namespace uots {
namespace {

std::unique_ptr<TrajectoryDatabase> MakeDb(int num_trajectories,
                                           uint64_t seed) {
  GridNetworkOptions gopts;
  gopts.rows = 18;
  gopts.cols = 18;
  gopts.seed = seed;
  auto g = MakeGridNetwork(gopts);
  EXPECT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = num_trajectories;
  topts.vocabulary_size = 100;
  topts.seed = seed + 1;
  auto data = GenerateTrips(*g, topts);
  EXPECT_TRUE(data.ok());
  return std::make_unique<TrajectoryDatabase>(
      std::move(*g), std::move(data->store), std::move(data->vocabulary));
}

TEST(TimeIndex, SortedAndComplete) {
  auto db = MakeDb(50, 71);
  const TimeIndex& index = db->time_index();
  EXPECT_EQ(index.size(), db->store().TotalSamples());
  for (size_t i = 1; i < index.entries().size(); ++i) {
    EXPECT_LE(index.entries()[i - 1].time_s, index.entries()[i].time_s);
  }
}

TEST(TimeIndex, LowerBoundSemantics) {
  TrajectoryStore store;
  Trajectory t;
  t.samples = {{0, 100}, {1, 200}, {2, 300}};
  ASSERT_TRUE(store.Add(t).ok());
  const TimeIndex index(store);
  EXPECT_EQ(index.LowerBound(0), 0u);
  EXPECT_EQ(index.LowerBound(150), 1u);
  EXPECT_EQ(index.LowerBound(200), 1u);
  EXPECT_EQ(index.LowerBound(301), 3u);
}

TEST(TemporalExpansion, SettlesInNondecreasingOffsetOrder) {
  auto db = MakeDb(40, 72);
  TemporalExpansion ex(db->time_index());
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const int32_t origin = static_cast<int32_t>(rng.Uniform(kSecondsPerDay));
    ex.Reset(origin);
    double last = -1.0;
    TrajId t;
    double dt;
    size_t count = 0;
    while (ex.Step(&t, &dt)) {
      EXPECT_GE(dt, last);
      EXPECT_DOUBLE_EQ(dt, ex.radius());
      last = dt;
      ++count;
    }
    EXPECT_TRUE(ex.exhausted());
    EXPECT_EQ(count, db->store().TotalSamples());
  }
}

TEST(TemporalExpansion, FirstHitPerTrajectoryIsExactMinimum) {
  auto db = MakeDb(40, 73);
  const int32_t origin = 12 * 3600;
  TemporalExpansion ex(db->time_index());
  ex.Reset(origin);
  std::map<TrajId, double> first_hit;
  TrajId t;
  double dt;
  while (ex.Step(&t, &dt)) {
    first_hit.emplace(t, dt);  // only the first insert survives
  }
  for (TrajId id = 0; id < db->store().size(); ++id) {
    double expected = 1e18;
    for (const Sample& s : db->store().SamplesOf(id)) {
      expected = std::min(
          expected, std::fabs(static_cast<double>(origin) - s.time_s));
    }
    ASSERT_TRUE(first_hit.count(id));
    EXPECT_DOUBLE_EQ(first_hit[id], expected) << "trajectory " << id;
  }
}

TEST(TemporalExpansion, EmptyStore) {
  TrajectoryStore store;
  const TimeIndex index(store);
  TemporalExpansion ex(index);
  ex.Reset(1000);
  TrajId t;
  double dt;
  EXPECT_FALSE(ex.Step(&t, &dt));
  EXPECT_TRUE(ex.exhausted());
}

TEST(ValidateTemporalQuery, Rules) {
  TemporalUotsQuery q;
  EXPECT_FALSE(ValidateTemporalQuery(q, 100).ok());  // no locations
  q.locations = {1};
  q.times = {3600};
  EXPECT_TRUE(ValidateTemporalQuery(q, 100).ok());
  q.weight_spatial = 0.5;  // weights now sum to 1.1
  EXPECT_FALSE(ValidateTemporalQuery(q, 100).ok());
  q.weight_spatial = 0.4;
  q.times = {-5};
  EXPECT_FALSE(ValidateTemporalQuery(q, 100).ok());  // bad time
  q.times.clear();
  EXPECT_FALSE(ValidateTemporalQuery(q, 100).ok());  // wt>0 without times
  q.weight_temporal = 0.0;
  q.weight_textual = 0.6;
  EXPECT_TRUE(ValidateTemporalQuery(q, 100).ok());
  q.locations.assign(40, 1);
  q.times.assign(30, 1000);
  q.weight_temporal = 0.3;
  q.weight_textual = 0.3;
  EXPECT_FALSE(ValidateTemporalQuery(q, 100).ok());  // > 64 sources
}

using Weights = std::tuple<double, double, double>;

class TemporalEquivalenceTest : public ::testing::TestWithParam<Weights> {};

TEST_P(TemporalEquivalenceTest, SearchMatchesBruteForce) {
  const auto [ws, wt, wk] = GetParam();
  static auto* db = MakeDb(300, 74).release();
  Rng rng(75);
  TemporalUotsSearcher searcher(*db);
  for (int trial = 0; trial < 5; ++trial) {
    // Derive a query from a random seed trajectory (locations, times, and
    // keywords all perturbed from it) so strong matches exist.
    const TrajId seed =
        static_cast<TrajId>(rng.Uniform(db->store().size()));
    const auto samples = db->store().SamplesOf(seed);
    TemporalUotsQuery q;
    q.weight_spatial = ws;
    q.weight_temporal = wt;
    q.weight_textual = wk;
    q.k = 10;
    for (int i = 0; i < 3; ++i) {
      q.locations.push_back(
          samples[rng.Uniform(samples.size())].vertex);
      if (wt > 0) {
        const int32_t jitter = static_cast<int32_t>(rng.UniformInt(-900, 900));
        int32_t t = samples[rng.Uniform(samples.size())].time_s + jitter;
        t = std::clamp(t, 0, kSecondsPerDay - 1);
        q.times.push_back(t);
      }
    }
    q.keywords = db->store().KeywordsOf(seed);

    auto expected = BruteForceTemporalSearch(*db, q);
    auto got = searcher.Search(q);
    ASSERT_TRUE(expected.ok() && got.ok());
    ASSERT_EQ(expected->items.size(), got->items.size());
    for (size_t i = 0; i < expected->items.size(); ++i) {
      EXPECT_NEAR(expected->items[i].score, got->items[i].score, 1e-9)
          << "rank " << i;
      // Decomposition consistency.
      const auto& item = got->items[i];
      EXPECT_NEAR(item.score,
                  ws * item.spatial_sim + wt * item.temporal_sim +
                      wk * item.textual_sim,
                  1e-12);
    }
  }
}

std::string WeightsName(const ::testing::TestParamInfo<Weights>& info) {
  return "s" +
         std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
         "_t" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
         "_k" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
}

INSTANTIATE_TEST_SUITE_P(
    Weights, TemporalEquivalenceTest,
    ::testing::Values(Weights{0.4, 0.3, 0.3}, Weights{1.0, 0.0, 0.0},
                      Weights{0.2, 0.8, 0.0}, Weights{0.1, 0.1, 0.8},
                      Weights{0.5, 0.5, 0.0}),
    WeightsName);

TEST(TemporalSearch, ReducesToTwoDomainWhenTemporalWeightZero) {
  auto db = MakeDb(200, 76);
  TemporalUotsQuery q3;
  q3.locations = {5, 50, 120};
  q3.keywords = KeywordSet({1, 2, 3});
  q3.weight_spatial = 0.5;
  q3.weight_temporal = 0.0;
  q3.weight_textual = 0.5;
  q3.k = 8;
  TemporalUotsSearcher searcher3(*db);
  auto r3 = searcher3.Search(q3);
  ASSERT_TRUE(r3.ok());

  UotsQuery q2;
  q2.locations = q3.locations;
  q2.keywords = q3.keywords;
  q2.lambda = 0.5;
  q2.k = 8;
  auto engine2 = CreateAlgorithm(*db, AlgorithmKind::kUots);
  auto r2 = engine2->Search(q2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->items.size(), r3->items.size());
  for (size_t i = 0; i < r2->items.size(); ++i) {
    EXPECT_NEAR(r2->items[i].score, r3->items[i].score, 1e-9);
  }
}

TEST(TemporalSearch, TemporalWeightChangesRanking) {
  auto db = MakeDb(300, 77);
  // Purely temporal preference for 3 am vs 3 pm must produce different
  // top results (rush-hour trips dominate the data).
  TemporalUotsQuery q;
  q.locations = {10};
  q.weight_spatial = 0.0;
  q.weight_temporal = 1.0;
  q.weight_textual = 0.0;
  q.k = 5;
  TemporalUotsSearcher searcher(*db);
  q.times = {3 * 3600};
  auto night = searcher.Search(q);
  q.times = {15 * 3600};
  auto day = searcher.Search(q);
  ASSERT_TRUE(night.ok() && day.ok());
  bool differs = night->items.size() != day->items.size();
  for (size_t i = 0; !differs && i < night->items.size(); ++i) {
    differs = night->items[i].id != day->items[i].id;
  }
  EXPECT_TRUE(differs);
  // Temporal similarity of the best day match should be near-perfect.
  ASSERT_FALSE(day->items.empty());
  EXPECT_GT(day->items[0].temporal_sim, 0.8);
}

}  // namespace
}  // namespace uots

// Keyword inverted index: postings structure and candidate scoring
// equivalence against direct pairwise evaluation.

#include "text/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "util/rng.h"

namespace uots {
namespace {

std::vector<KeywordSet> RandomDocs(Rng& rng, int count, int vocab,
                                   int max_terms) {
  std::vector<KeywordSet> docs;
  for (int d = 0; d < count; ++d) {
    std::vector<TermId> terms;
    const int n = 1 + static_cast<int>(rng.Uniform(max_terms));
    for (int i = 0; i < n; ++i) {
      terms.push_back(static_cast<TermId>(rng.Uniform(vocab)));
    }
    docs.emplace_back(std::move(terms));
  }
  return docs;
}

TEST(InvertedIndex, PostingsSortedAndDeduplicated) {
  InvertedKeywordIndex index;
  index.AddDocument(2, KeywordSet({1, 2}));
  index.AddDocument(0, KeywordSet({1}));
  index.AddDocument(1, KeywordSet({1, 3}));
  index.Finalize();
  const auto p1 = index.Postings(1);
  ASSERT_EQ(p1.size(), 3u);
  EXPECT_TRUE(std::is_sorted(p1.begin(), p1.end()));
  EXPECT_EQ(index.Postings(2).size(), 1u);
  EXPECT_TRUE(index.Postings(99).empty());
  EXPECT_EQ(index.num_documents(), 3u);
}

TEST(InvertedIndex, DocumentFrequencies) {
  InvertedKeywordIndex index;
  index.AddDocument(0, KeywordSet({0, 1}));
  index.AddDocument(1, KeywordSet({1}));
  index.Finalize();
  const auto df = index.DocumentFrequencies();
  ASSERT_EQ(df.size(), 2u);
  EXPECT_EQ(df[0], 1);
  EXPECT_EQ(df[1], 2);
}

class IndexScoringTest : public ::testing::TestWithParam<TextualMeasure> {};

TEST_P(IndexScoringTest, ScoreCandidatesMatchesDirectEvaluation) {
  Rng rng(55);
  const auto docs = RandomDocs(rng, 200, 40, 8);
  InvertedKeywordIndex index;
  for (size_t d = 0; d < docs.size(); ++d) {
    index.AddDocument(static_cast<DocId>(d), docs[d]);
  }
  index.Finalize();

  TextualSimilarity sim(GetParam());
  if (GetParam() == TextualMeasure::kWeighted) {
    sim.SetDocumentFrequencies(index.DocumentFrequencies(),
                               static_cast<int64_t>(docs.size()));
  }
  const auto accessor = [&docs](DocId d) { return docs[d]; };

  for (int trial = 0; trial < 30; ++trial) {
    std::vector<TermId> qterms;
    for (int i = 0; i < 5; ++i) {
      qterms.push_back(static_cast<TermId>(rng.Uniform(40)));
    }
    const KeywordSet query(qterms);
    std::vector<ScoredDoc> got;
    int64_t postings = 0;
    index.ScoreCandidates(query, sim, &got, &postings, accessor);

    std::map<DocId, double> got_map;
    for (const auto& s : got) got_map[s.doc] = s.score;
    EXPECT_EQ(got_map.size(), got.size()) << "duplicate docs in result";

    int64_t expected_candidates = 0;
    for (size_t d = 0; d < docs.size(); ++d) {
      const double expected = sim.Score(query, docs[d]);
      if (query.IntersectionSize(docs[d]) > 0) {
        ++expected_candidates;
        ASSERT_TRUE(got_map.count(static_cast<DocId>(d))) << "missing doc " << d;
        EXPECT_NEAR(got_map[static_cast<DocId>(d)], expected, 1e-12);
      } else {
        EXPECT_FALSE(got_map.count(static_cast<DocId>(d)))
            << "doc " << d << " shares no term";
        EXPECT_DOUBLE_EQ(expected, 0.0);
      }
    }
    EXPECT_EQ(static_cast<int64_t>(got.size()), expected_candidates);
    EXPECT_GE(postings, static_cast<int64_t>(got.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Measures, IndexScoringTest,
    ::testing::Values(TextualMeasure::kJaccard, TextualMeasure::kDice,
                      TextualMeasure::kOverlap, TextualMeasure::kCosine,
                      TextualMeasure::kWeighted),
    [](const ::testing::TestParamInfo<TextualMeasure>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(InvertedIndex, EmptyQueryYieldsNothing) {
  InvertedKeywordIndex index;
  index.AddDocument(0, KeywordSet({1}));
  index.Finalize();
  std::vector<ScoredDoc> out = {{0, 0.5}};
  index.ScoreCandidates(KeywordSet{}, TextualSimilarity(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(InvertedIndex, DocWithNoKeywordsNeverReturned) {
  InvertedKeywordIndex index;
  index.AddDocument(0, KeywordSet{});
  index.AddDocument(1, KeywordSet({4}));
  index.Finalize();
  std::vector<ScoredDoc> out;
  index.ScoreCandidates(KeywordSet({4}), TextualSimilarity(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].doc, 1u);
}

// The index is shared by every concurrently-executing query engine, so
// scoring must not touch index-resident state. This hammers one index
// from several threads (each with its own caller-owned scratch, as the
// engines hold) and checks every result against the single-threaded
// answer. Against the old design — overlap counters stored as mutable
// members of the index — concurrent calls corrupt each other's counts
// and this fails within a few iterations.
TEST(InvertedIndex, ConcurrentScoringIsExactWithPerCallerScratch) {
  Rng rng(77);
  const auto docs = RandomDocs(rng, 300, 30, 6);
  InvertedKeywordIndex index;
  for (size_t d = 0; d < docs.size(); ++d) {
    index.AddDocument(static_cast<DocId>(d), docs[d]);
  }
  index.Finalize();
  const TextualSimilarity sim;  // jaccard

  std::vector<KeywordSet> queries;
  for (int q = 0; q < 16; ++q) {
    std::vector<TermId> terms;
    for (int i = 0; i < 3; ++i) {
      terms.push_back(static_cast<TermId>(rng.Uniform(30)));
    }
    queries.emplace_back(std::move(terms));
  }
  std::vector<std::vector<ScoredDoc>> expected(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    index.ScoreCandidates(queries[q], sim, &expected[q]);
  }

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      TextScoringScratch scratch;  // one per thread, like one per engine
      std::vector<ScoredDoc> got;
      Rng pick(900 + static_cast<uint64_t>(t));
      for (int i = 0; i < 400; ++i) {
        const size_t q = pick.Uniform(queries.size());
        index.ScoreCandidates(queries[q], sim, &got, nullptr, nullptr,
                              &scratch);
        if (got.size() != expected[q].size()) {
          ++wrong;
          continue;
        }
        for (size_t j = 0; j < got.size(); ++j) {
          if (got[j].doc != expected[q][j].doc ||
              got[j].score != expected[q][j].score) {
            ++wrong;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(InvertedIndex, MemoryUsageGrowsWithContent) {
  InvertedKeywordIndex small, large;
  small.AddDocument(0, KeywordSet({1}));
  small.Finalize();
  for (DocId d = 0; d < 100; ++d) {
    large.AddDocument(d, KeywordSet({d, d + 1, d + 2}));
  }
  large.Finalize();
  EXPECT_GT(large.MemoryUsage(), small.MemoryUsage());
}

}  // namespace
}  // namespace uots

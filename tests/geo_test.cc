#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "geo/grid_index.h"
#include "geo/point.h"
#include "util/rng.h"

namespace uots {
namespace {

TEST(Point, Distances) {
  const Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(BBox, ExtendAndContains) {
  BBox box = BBox::Empty();
  box.Extend(Point{1, 2});
  box.Extend(Point{-1, 5});
  EXPECT_TRUE(box.Contains(Point{0, 3}));
  EXPECT_FALSE(box.Contains(Point{2, 3}));
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
}

TEST(BBox, MinDistanceZeroInsidePositiveOutside) {
  BBox box{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(box.MinDistance(Point{5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(box.MinDistance(Point{13, 14}), 5.0);  // corner 3-4-5
  EXPECT_DOUBLE_EQ(box.MinDistance(Point{-2, 5}), 2.0);
}

TEST(ProjectLonLat, ScalesWithLatitude) {
  const Point equator = ProjectLonLat(1.0, 0.0, 0.0);
  EXPECT_NEAR(equator.x, 111320.0, 1.0);
  const Point sixty = ProjectLonLat(1.0, 0.0, 60.0);
  EXPECT_NEAR(sixty.x, 111320.0 * 0.5, 10.0);
}

class GridIndexRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridIndexRandomTest, NearestMatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<Point> pts;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    pts.push_back(Point{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)});
  }
  GridIndex index(pts);
  for (int trial = 0; trial < 200; ++trial) {
    const Point q{rng.UniformDouble(-100, 1100), rng.UniformDouble(-100, 1100)};
    const int64_t got = index.Nearest(q);
    ASSERT_GE(got, 0);
    double best = std::numeric_limits<double>::max();
    for (const auto& p : pts) best = std::min(best, SquaredDistance(p, q));
    EXPECT_DOUBLE_EQ(SquaredDistance(pts[got], q), best);
  }
}

TEST_P(GridIndexRandomTest, WithinRadiusMatchesBruteForce) {
  Rng rng(GetParam() + 1000);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(Point{rng.UniformDouble(0, 500), rng.UniformDouble(0, 500)});
  }
  GridIndex index(pts);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.UniformDouble(0, 500), rng.UniformDouble(0, 500)};
    const double radius = rng.UniformDouble(10, 150);
    std::vector<int64_t> got;
    index.WithinRadius(q, radius, &got);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> expected;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (EuclideanDistance(pts[i], q) <= radius) {
        expected.push_back(static_cast<int64_t>(i));
      }
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GridIndex, EmptyIndexReturnsMinusOne) {
  GridIndex index(std::vector<Point>{});
  EXPECT_EQ(index.Nearest(Point{0, 0}), -1);
  std::vector<int64_t> out;
  index.WithinRadius(Point{0, 0}, 10, &out);
  EXPECT_TRUE(out.empty());
}

TEST(GridIndex, SinglePoint) {
  GridIndex index({Point{5, 5}});
  EXPECT_EQ(index.Nearest(Point{100, 100}), 0);
}

TEST(GridIndex, CoincidentPoints) {
  std::vector<Point> pts(10, Point{1, 1});
  GridIndex index(pts);
  const int64_t got = index.Nearest(Point{1, 1});
  EXPECT_GE(got, 0);
  EXPECT_LT(got, 10);
  std::vector<int64_t> out;
  index.WithinRadius(Point{1, 1}, 0.5, &out);
  EXPECT_EQ(out.size(), 10u);
}

}  // namespace
}  // namespace uots

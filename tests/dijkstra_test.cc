// Shortest-path correctness: Dijkstra variants vs Floyd-Warshall on random
// graphs, parameterized over seeds (property-style sweep).

#include "net/dijkstra.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/generators.h"
#include "util/rng.h"

namespace uots {
namespace {

/// O(V^3) all-pairs reference.
std::vector<std::vector<double>> FloydWarshall(const RoadNetwork& g) {
  const size_t n = g.NumVertices();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kInfDistance));
  for (size_t v = 0; v < n; ++v) {
    d[v][v] = 0.0;
    for (const auto& e : g.Neighbors(static_cast<VertexId>(v))) {
      d[v][e.to] = std::min(d[v][e.to], static_cast<double>(e.weight));
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (d[i][k] == kInfDistance) continue;
      for (size_t j = 0; j < n; ++j) {
        if (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
      }
    }
  }
  return d;
}

RoadNetwork SmallRandomNetwork(uint64_t seed) {
  RandomGeometricOptions opts;
  opts.num_vertices = 60;
  opts.extent_m = 1000.0;
  opts.k_nearest = 3;
  opts.seed = seed;
  auto g = MakeRandomGeometricNetwork(opts);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

class DijkstraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraPropertyTest, TreeMatchesFloydWarshall) {
  const RoadNetwork g = SmallRandomNetwork(GetParam());
  const auto ref = FloydWarshall(g);
  for (VertexId s = 0; s < g.NumVertices(); s += 7) {
    const ShortestPathTree tree = ComputeShortestPathTree(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      EXPECT_NEAR(tree.dist[t], ref[s][t], 1e-6) << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(DijkstraPropertyTest, PairDistanceMatchesTree) {
  const RoadNetwork g = SmallRandomNetwork(GetParam() + 100);
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const ShortestPathTree tree = ComputeShortestPathTree(g, s);
    EXPECT_NEAR(ShortestPathDistance(g, s, t), tree.dist[t], 1e-9);
  }
}

TEST_P(DijkstraPropertyTest, PathIsValidAndHasReportedLength) {
  const RoadNetwork g = SmallRandomNetwork(GetParam() + 200);
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const auto path = ShortestPathVertices(g, s, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    double length = 0.0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      double w = -1.0;
      for (const auto& e : g.Neighbors(path[i])) {
        if (e.to == path[i + 1]) w = e.weight;
      }
      ASSERT_GE(w, 0.0) << "non-adjacent path step";
      length += w;
    }
    EXPECT_NEAR(length, ShortestPathDistance(g, s, t), 1e-6);
  }
}

TEST_P(DijkstraPropertyTest, NearestOfFindsClosestTarget) {
  const RoadNetwork g = SmallRandomNetwork(GetParam() + 300);
  Rng rng(GetParam() + 2);
  DijkstraEngine engine(g);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint8_t> is_target(g.NumVertices(), 0);
    for (int i = 0; i < 5; ++i) is_target[rng.Uniform(g.NumVertices())] = 1;
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const NearestTargetResult r = engine.NearestOf(s, is_target);
    const ShortestPathTree tree = ComputeShortestPathTree(g, s);
    double best = kInfDistance;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (is_target[v]) best = std::min(best, tree.dist[v]);
    }
    ASSERT_NE(r.vertex, kInvalidVertex);
    EXPECT_NEAR(r.distance, best, 1e-9);
    EXPECT_TRUE(is_target[r.vertex]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(Dijkstra, SourceEqualsTarget) {
  const RoadNetwork g = SmallRandomNetwork(5);
  EXPECT_DOUBLE_EQ(ShortestPathDistance(g, 3, 3), 0.0);
  const auto path = ShortestPathVertices(g, 3, 3);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 3u);
}

TEST(Dijkstra, NearestOfRespectsMaxRadius) {
  const RoadNetwork g = SmallRandomNetwork(6);
  DijkstraEngine engine(g);
  std::vector<uint8_t> is_target(g.NumVertices(), 0);
  // Pick the farthest vertex from 0 as the only target.
  const ShortestPathTree tree = ComputeShortestPathTree(g, 0);
  VertexId far = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (tree.dist[v] > tree.dist[far]) far = v;
  }
  is_target[far] = 1;
  const auto r = engine.NearestOf(0, is_target, tree.dist[far] / 2.0);
  EXPECT_EQ(r.vertex, kInvalidVertex);
  EXPECT_EQ(r.distance, kInfDistance);
}

TEST(Dijkstra, NearestOfSourceIsTarget) {
  const RoadNetwork g = SmallRandomNetwork(7);
  DijkstraEngine engine(g);
  std::vector<uint8_t> is_target(g.NumVertices(), 0);
  is_target[4] = 1;
  const auto r = engine.NearestOf(4, is_target);
  EXPECT_EQ(r.vertex, 4u);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(Dijkstra, ExploreVisitsInNondecreasingOrder) {
  const RoadNetwork g = SmallRandomNetwork(8);
  DijkstraEngine engine(g);
  double last = -1.0;
  size_t count = 0;
  engine.Explore(0, kInfDistance, [&](VertexId, double d) {
    EXPECT_GE(d, last);
    last = d;
    ++count;
  });
  EXPECT_EQ(count, g.NumVertices());
}

TEST(DistanceField, ResetIsCheapAndComplete) {
  DistanceField f(10);
  f.Set(3, 1.5);
  EXPECT_TRUE(f.IsSet(3));
  EXPECT_DOUBLE_EQ(f.Get(3), 1.5);
  EXPECT_EQ(f.Get(4), kInfDistance);
  f.Reset();
  EXPECT_FALSE(f.IsSet(3));
  EXPECT_EQ(f.Get(3), kInfDistance);
}

}  // namespace
}  // namespace uots

// A* and ALT landmark correctness against Dijkstra ground truth.

#include "net/astar.h"

#include <gtest/gtest.h>

#include "net/generators.h"
#include "net/landmarks.h"
#include "util/rng.h"

namespace uots {
namespace {

RoadNetwork TestNetwork(uint64_t seed) {
  GridNetworkOptions opts;
  opts.rows = 20;
  opts.cols = 20;
  opts.seed = seed;
  auto g = MakeGridNetwork(opts);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

class AStarPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AStarPropertyTest, EuclideanHeuristicMatchesDijkstra) {
  const RoadNetwork g = TestNetwork(GetParam());
  AStarEngine astar(g);
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const double expected = ShortestPathDistance(g, s, t);
    const PathResult r = astar.FindPath(s, t);
    EXPECT_NEAR(r.distance, expected, 1e-6) << "s=" << s << " t=" << t;
    ASSERT_FALSE(r.path.empty());
    EXPECT_EQ(r.path.front(), s);
    EXPECT_EQ(r.path.back(), t);
  }
}

TEST_P(AStarPropertyTest, PathEdgesAreAdjacentAndSumToDistance) {
  const RoadNetwork g = TestNetwork(GetParam() + 5);
  AStarEngine astar(g);
  Rng rng(GetParam() + 5);
  for (int trial = 0; trial < 10; ++trial) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const PathResult r = astar.FindPath(s, t);
    double sum = 0.0;
    for (size_t i = 0; i + 1 < r.path.size(); ++i) {
      double w = -1.0;
      for (const auto& e : g.Neighbors(r.path[i])) {
        if (e.to == r.path[i + 1]) w = e.weight;
      }
      ASSERT_GT(w, 0.0) << "path uses non-edge";
      sum += w;
    }
    EXPECT_NEAR(sum, r.distance, 1e-6);
  }
}

TEST_P(AStarPropertyTest, LandmarkBoundsAreAdmissible) {
  const RoadNetwork g = TestNetwork(GetParam() + 10);
  const LandmarkIndex landmarks(g, 4);
  Rng rng(GetParam() + 10);
  for (int trial = 0; trial < 30; ++trial) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId v = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const double lb = landmarks.LowerBound(u, v);
    const double exact = ShortestPathDistance(g, u, v);
    EXPECT_LE(lb, exact + 1e-6) << "u=" << u << " v=" << v;
    EXPECT_GE(lb, 0.0);
  }
}

TEST_P(AStarPropertyTest, AltGivesExactDistancesWithFewerSettles) {
  const RoadNetwork g = TestNetwork(GetParam() + 15);
  const LandmarkIndex landmarks(g, 8);
  AStarEngine astar(g);
  Rng rng(GetParam() + 15);
  int64_t settled_euclid = 0, settled_alt = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const PathResult re = astar.FindPath(s, t);
    const PathResult ra = astar.FindPath(s, t, landmarks.HeuristicFor(t));
    EXPECT_NEAR(re.distance, ra.distance, 1e-6);
    settled_euclid += re.settled;
    settled_alt += ra.settled;
  }
  // ALT dominates the Euclidean bound on grid networks (weights ARE
  // Euclidean lengths, so ALT's max with triangle bounds can only help).
  EXPECT_LE(settled_alt, settled_euclid);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarPropertyTest, ::testing::Values(3, 7, 13));

TEST(AStar, SourceEqualsTarget) {
  const RoadNetwork g = TestNetwork(1);
  AStarEngine astar(g);
  const PathResult r = astar.FindPath(5, 5);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  ASSERT_EQ(r.path.size(), 1u);
  EXPECT_EQ(r.path[0], 5u);
}

TEST(AStar, DistanceOnlySkipsPath) {
  const RoadNetwork g = TestNetwork(2);
  AStarEngine astar(g);
  EXPECT_NEAR(astar.Distance(0, 10), ShortestPathDistance(g, 0, 10), 1e-6);
}

TEST(Landmarks, SelectsRequestedCount) {
  const RoadNetwork g = TestNetwork(3);
  const LandmarkIndex landmarks(g, 5);
  EXPECT_EQ(landmarks.num_landmarks(), 5);
  // Landmarks are distinct vertices.
  auto ls = landmarks.landmarks();
  std::sort(ls.begin(), ls.end());
  EXPECT_EQ(std::unique(ls.begin(), ls.end()), ls.end());
}

TEST(Landmarks, LowerBoundIsSymmetricAndReflexive) {
  const RoadNetwork g = TestNetwork(4);
  const LandmarkIndex landmarks(g, 3);
  EXPECT_DOUBLE_EQ(landmarks.LowerBound(7, 7), 0.0);
  EXPECT_DOUBLE_EQ(landmarks.LowerBound(3, 9), landmarks.LowerBound(9, 3));
}

}  // namespace
}  // namespace uots

// Latency histogram: bucket math, percentile accuracy against a
// sorted-vector oracle, merge semantics, and the metrics registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/histogram.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace uots {
namespace {

// Nearest-rank percentile on the raw samples: the value at ceil(p/100 * n).
int64_t OraclePercentile(std::vector<int64_t> values, double p) {
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p / 100.0 * static_cast<double>(values.size()));
  if (rank < 1) rank = 1;
  return values[rank - 1];
}

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (int64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBuckets, BoundsAreConsistent) {
  // Every bucket's bounds map back to itself and tile the range.
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t lo = LatencyHistogram::BucketLowerBound(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i) << "lower bound of " << i;
    const int64_t hi = LatencyHistogram::BucketUpperBound(i);
    if (hi != std::numeric_limits<int64_t>::max()) {
      EXPECT_EQ(LatencyHistogram::BucketIndex(hi), i) << "upper bound of " << i;
      EXPECT_EQ(LatencyHistogram::BucketLowerBound(i + 1), hi + 1);
    }
  }
  EXPECT_EQ(
      LatencyHistogram::BucketIndex(std::numeric_limits<int64_t>::max()),
      LatencyHistogram::kNumBuckets - 1);
}

TEST(Histogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min_ns(), 0);
  EXPECT_EQ(h.max_ns(), 0);
  EXPECT_EQ(h.PercentileNs(50), 0);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 0.0);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.Record(12345);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min_ns(), 12345);
  EXPECT_EQ(h.max_ns(), 12345);
  // One sample: every percentile is that sample (clamped to [min, max]).
  EXPECT_EQ(h.PercentileNs(0), 12345);
  EXPECT_EQ(h.PercentileNs(50), 12345);
  EXPECT_EQ(h.PercentileNs(100), 12345);
}

TEST(Histogram, NegativeClampsToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.min_ns(), 0);
  EXPECT_EQ(h.PercentileNs(50), 0);
}

TEST(Histogram, PercentilesMatchOracleWithinBucketError) {
  Rng rng(99);
  std::vector<int64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    // Latency-like mix: mostly ~1ms with a heavy tail up to ~1s.
    int64_t v = static_cast<int64_t>(1e6 * (0.2 + rng.UniformDouble()));
    if (rng.Bernoulli(0.05)) v *= 50;
    if (rng.Bernoulli(0.01)) v *= 500;
    values.push_back(v);
    h.Record(v);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const int64_t oracle = OraclePercentile(values, p);
    const int64_t est = h.PercentileNs(p);
    // The histogram returns the bucket upper bound: never below the true
    // percentile, at most one sub-bucket (6.25%) above it.
    EXPECT_GE(est, oracle) << "p" << p;
    EXPECT_LE(est, static_cast<int64_t>(oracle * 1.0625) + 1) << "p" << p;
  }
  EXPECT_EQ(h.PercentileNs(100), h.max_ns());
}

TEST(Histogram, MergeEqualsBulkRecord) {
  Rng rng(7);
  LatencyHistogram a, b, merged;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Uniform(1 << 20));
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    merged.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), merged.count());
  EXPECT_EQ(a.sum_ns(), merged.sum_ns());
  EXPECT_EQ(a.min_ns(), merged.min_ns());
  EXPECT_EQ(a.max_ns(), merged.max_ns());
  for (double p : {25.0, 50.0, 75.0, 99.0}) {
    EXPECT_EQ(a.PercentileNs(p), merged.PercentileNs(p)) << "p" << p;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.Record(1000);
  h.Merge(empty);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min_ns(), 1000);
  empty.Merge(h);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.min_ns(), 1000);
}

TEST(Histogram, ToStringMentionsPercentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1000000LL);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("n=100"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

TEST(HistogramSnapshot, MatchesLiveHistogram) {
  Rng rng(123);
  LatencyHistogram h;
  for (int i = 0; i < 2000; ++i) {
    h.Record(static_cast<int64_t>(rng.Uniform(1 << 24)) + 100);
  }
  const HistogramSnapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, h.count());
  EXPECT_EQ(snap.sum_ns, h.sum_ns());
  EXPECT_EQ(snap.min_ns, h.min_ns());
  EXPECT_EQ(snap.max_ns, h.max_ns());
  EXPECT_DOUBLE_EQ(snap.MeanNs(), h.MeanNs());
  for (double p : {1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(snap.PercentileNs(p), h.PercentileNs(p)) << "p" << p;
  }
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(snap.counts[i], h.BucketCount(i)) << "bucket " << i;
  }
}

TEST(HistogramSnapshot, IsFrozenAgainstLaterRecords) {
  LatencyHistogram h;
  h.Record(1000);
  const HistogramSnapshot snap = h.TakeSnapshot();
  h.Record(5'000'000'000LL);
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.max_ns, 1000);
  EXPECT_EQ(h.count(), 2);
}

TEST(HistogramSnapshot, EmptyIsAllZero) {
  const HistogramSnapshot snap = LatencyHistogram().TakeSnapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.min_ns, 0);
  EXPECT_EQ(snap.max_ns, 0);
  EXPECT_EQ(snap.PercentileNs(50), 0);
  EXPECT_EQ(snap.CumulativeCountLe(1 << 30), 0);
}

TEST(HistogramSnapshot, QuantilesWithinErrorBound) {
  // The documented contract for exporter-side quantiles: never below the
  // true nearest-rank percentile, at most 1/kSubBuckets = 6.25% above.
  Rng rng(321);
  std::vector<int64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 4000; ++i) {
    int64_t v = static_cast<int64_t>(5e5 + 4e6 * rng.UniformDouble());
    if (rng.Bernoulli(0.02)) v *= 100;  // tail out to ~0.5s
    values.push_back(v);
    h.Record(v);
  }
  const HistogramSnapshot snap = h.TakeSnapshot();
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    const int64_t oracle = OraclePercentile(values, p);
    const int64_t est = snap.PercentileNs(p);
    EXPECT_GE(est, oracle) << "p" << p;
    EXPECT_LE(est, static_cast<int64_t>(oracle * 1.0625) + 1) << "p" << p;
  }
}

TEST(Histogram, CumulativeCountLeIsMonotoneAndBounded) {
  Rng rng(55);
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Record(static_cast<int64_t>(rng.Uniform(1 << 22)));
  }
  const HistogramSnapshot snap = h.TakeSnapshot();
  int64_t prev = -1;
  for (int64_t ns = 0; ns <= (int64_t{1} << 23); ns += 1 << 16) {
    const int64_t live = h.CumulativeCountLe(ns);
    EXPECT_EQ(snap.CumulativeCountLe(ns), live) << "ns=" << ns;
    EXPECT_GE(live, prev) << "ns=" << ns;  // monotone in ns
    EXPECT_LE(live, h.count());
    prev = live;
  }
  EXPECT_EQ(h.CumulativeCountLe(-1), 0);
  EXPECT_EQ(h.CumulativeCountLe(std::numeric_limits<int64_t>::max()),
            h.count());
}

TEST(Histogram, CumulativeCountLeNeverOvercounts) {
  // A bucket only counts toward `le` once its whole range fits below the
  // threshold, so the result can undercount by a bucket but never
  // overcount.
  LatencyHistogram h;
  h.Record(100);  // lands in the bucket spanning [100, 103]
  const int idx = LatencyHistogram::BucketIndex(100);
  const int64_t hi = LatencyHistogram::BucketUpperBound(idx);
  EXPECT_EQ(h.CumulativeCountLe(hi - 1), 0);
  EXPECT_EQ(h.CumulativeCountLe(hi), 1);
}

TEST(MetricsRegistry, GetSnapshotAndSnapshotAll) {
  MetricsRegistry reg;
  reg.Record("lat", 1000);
  reg.Record("lat", 3000);
  reg.Record("other", 500);
  const HistogramSnapshot snap = reg.GetSnapshot("lat");
  EXPECT_EQ(snap.count, 2);
  EXPECT_EQ(snap.sum_ns, 4000);
  EXPECT_EQ(reg.GetSnapshot("missing").count, 0);
  const auto all = reg.SnapshotAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "lat");
  EXPECT_EQ(all[0].second.count, 2);
  EXPECT_EQ(all[1].first, "other");
  EXPECT_EQ(all[1].second.count, 1);
}

TEST(MetricsRegistry, RecordGetAndClear) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.Names().empty());
  EXPECT_EQ(reg.Get("missing").count(), 0);
  reg.Record("a", 1000);
  reg.Record("a", 2000);
  reg.Record("b", 3000);
  EXPECT_EQ(reg.Get("a").count(), 2);
  EXPECT_EQ(reg.Get("b").count(), 1);
  EXPECT_EQ(reg.Names(), (std::vector<std::string>{"a", "b"}));
  const auto snapshot = reg.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a");
  EXPECT_EQ(snapshot[0].second.count(), 2);
  reg.Clear();
  EXPECT_TRUE(reg.Names().empty());
}

TEST(MetricsRegistry, MergeAccumulates) {
  MetricsRegistry reg;
  LatencyHistogram h;
  h.Record(500);
  h.Record(1500);
  reg.Merge("m", h);
  reg.Merge("m", h);
  EXPECT_EQ(reg.Get("m").count(), 4);
  EXPECT_EQ(reg.Get("m").min_ns(), 500);
}

}  // namespace
}  // namespace uots

// Threshold-query mode and the similar-pairs self join.

#include <gtest/gtest.h>

#include <set>

#include "core/brute_force.h"
#include "core/pairs.h"
#include "core/search.h"
#include "core/workload.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

std::unique_ptr<TrajectoryDatabase> MakeDb(int num_trajectories,
                                           uint64_t seed) {
  GridNetworkOptions gopts;
  gopts.rows = 20;
  gopts.cols = 20;
  gopts.seed = seed;
  auto g = MakeGridNetwork(gopts);
  EXPECT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = num_trajectories;
  topts.vocabulary_size = 120;
  topts.seed = seed + 1;
  auto data = GenerateTrips(*g, topts);
  EXPECT_TRUE(data.ok());
  return std::make_unique<TrajectoryDatabase>(
      std::move(*g), std::move(data->store), std::move(data->vocabulary));
}

/// Brute-force threshold reference: k = everything, filter by theta.
std::vector<ScoredTrajectory> BruteThreshold(const TrajectoryDatabase& db,
                                             UotsQuery q, double theta) {
  q.k = static_cast<int>(db.store().size());
  BruteForceSearch bf(db);
  auto r = bf.Search(q);
  EXPECT_TRUE(r.ok());
  std::vector<ScoredTrajectory> out;
  for (const auto& item : r->items) {
    if (item.score >= theta) out.push_back(item);
  }
  return out;
}

class ThresholdPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ThresholdPropertyTest, MatchesBruteForceFilter) {
  const auto [lambda, theta] = GetParam();
  auto db = MakeDb(300, 31);
  WorkloadOptions wopts;
  wopts.num_queries = 5;
  wopts.lambda = lambda;
  wopts.seed = 32;
  auto queries = MakeWorkload(*db, wopts);
  ASSERT_TRUE(queries.ok());
  UotsSearcher searcher(*db);
  for (const UotsQuery& q : *queries) {
    auto got = searcher.SearchThreshold(q, theta);
    ASSERT_TRUE(got.ok());
    const auto expected = BruteThreshold(*db, q, theta);
    ASSERT_EQ(got->items.size(), expected.size())
        << "lambda=" << lambda << " theta=" << theta;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(got->items[i].score, expected[i].score, 1e-9);
      EXPECT_GE(got->items[i].score, theta);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.7, 1.0),
                       ::testing::Values(0.4, 0.6, 0.8, 0.95)),
    [](const ::testing::TestParamInfo<std::tuple<double, double>>& info) {
      return "l" + std::to_string(static_cast<int>(
                       std::get<0>(info.param) * 10)) +
             "_t" + std::to_string(static_cast<int>(
                        std::get<1>(info.param) * 100));
    });

TEST(ThresholdSearch, HighThetaReturnsNothing) {
  auto db = MakeDb(100, 41);
  UotsQuery q;
  q.locations = {3, 17};
  q.keywords = KeywordSet({1, 2});
  UotsSearcher searcher(*db);
  auto r = searcher.SearchThreshold(q, 1.01);  // above the max of SimU
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->items.empty());
}

TEST(ThresholdSearch, ZeroThetaReturnsEverything) {
  auto db = MakeDb(100, 42);
  UotsQuery q;
  q.locations = {3, 17};
  q.keywords = KeywordSet({1, 2});
  UotsSearcher searcher(*db);
  auto r = searcher.SearchThreshold(q, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->items.size(), db->store().size());
  // Sorted descending.
  for (size_t i = 1; i < r->items.size(); ++i) {
    EXPECT_GE(r->items[i - 1].score, r->items[i].score);
  }
}

TEST(ThresholdSearch, InvalidQueryRejected) {
  auto db = MakeDb(10, 43);
  UotsSearcher searcher(*db);
  EXPECT_FALSE(searcher.SearchThreshold(UotsQuery{}, 0.5).ok());
}

TEST(PairQuery, UsesTrajectoryOwnSamplesAndKeywords) {
  auto db = MakeDb(50, 44);
  PairJoinOptions opts;
  opts.max_query_locations = 4;
  const UotsQuery q = MakePairQuery(*db, 0, opts);
  EXPECT_LE(q.locations.size(), 4u);
  EXPECT_GE(q.locations.size(), 1u);
  const auto samples = db->store().SamplesOf(0);
  for (VertexId v : q.locations) {
    bool found = false;
    for (const Sample& s : samples) found |= (s.vertex == v);
    EXPECT_TRUE(found) << "query location not on the trajectory";
  }
  EXPECT_EQ(q.keywords, db->store().KeywordsOf(0));
}

TEST(SimilarPairs, FindsPlantedDuplicates) {
  // Build a database with explicit duplicate trajectories.
  GridNetworkOptions gopts;
  gopts.rows = 15;
  gopts.cols = 15;
  gopts.seed = 51;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 60;
  topts.vocabulary_size = 100;
  topts.seed = 52;
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  // Duplicate trajectories 3 and 7 (ids 60, 61).
  TrajectoryStore store = std::move(data->store);
  ASSERT_TRUE(store.Add(store.Materialize(3)).ok());
  ASSERT_TRUE(store.Add(store.Materialize(7)).ok());
  TrajectoryDatabase db(std::move(*g), std::move(store),
                        std::move(data->vocabulary));

  PairJoinOptions opts;
  opts.theta = 0.95;
  auto pairs = FindSimilarPairs(db, opts);
  ASSERT_TRUE(pairs.ok());
  std::set<std::pair<TrajId, TrajId>> found;
  for (const auto& p : *pairs) {
    EXPECT_LT(p.a, p.b);
    EXPECT_GE(p.score, opts.theta);
    found.emplace(p.a, p.b);
  }
  EXPECT_TRUE(found.count({3, 60})) << "duplicate of 3 not detected";
  EXPECT_TRUE(found.count({7, 61})) << "duplicate of 7 not detected";
  // No pair may appear twice.
  EXPECT_EQ(found.size(), pairs->size());
}

TEST(SimilarPairs, ThreadCountDoesNotChangeResult) {
  auto db = MakeDb(80, 61);
  PairJoinOptions seq, par;
  seq.theta = par.theta = 0.7;
  seq.threads = 1;
  par.threads = 4;
  auto a = FindSimilarPairs(*db, seq);
  auto b = FindSimilarPairs(*db, par);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].a, (*b)[i].a);
    EXPECT_EQ((*a)[i].b, (*b)[i].b);
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST(SimilarPairs, ScoresAreSymmetricAverages) {
  auto db = MakeDb(60, 62);
  PairJoinOptions opts;
  opts.theta = 0.6;
  auto pairs = FindSimilarPairs(*db, opts);
  ASSERT_TRUE(pairs.ok());
  UotsSearcher searcher(*db);
  for (const auto& p : *pairs) {
    auto ra = searcher.SearchThreshold(MakePairQuery(*db, p.a, opts), opts.theta);
    auto rb = searcher.SearchThreshold(MakePairQuery(*db, p.b, opts), opts.theta);
    ASSERT_TRUE(ra.ok() && rb.ok());
    double sab = -1, sba = -1;
    for (const auto& item : ra->items) {
      if (item.id == p.b) sab = item.score;
    }
    for (const auto& item : rb->items) {
      if (item.id == p.a) sba = item.score;
    }
    ASSERT_GE(sab, 0.0);
    ASSERT_GE(sba, 0.0);
    EXPECT_NEAR(p.score, (sab + sba) / 2.0, 1e-12);
  }
}

TEST(SimilarPairs, RejectsBadOptions) {
  auto db = MakeDb(10, 63);
  PairJoinOptions opts;
  opts.threads = 0;
  EXPECT_FALSE(FindSimilarPairs(*db, opts).ok());
  opts = {};
  opts.lambda = -0.1;
  EXPECT_FALSE(FindSimilarPairs(*db, opts).ok());
  opts = {};
  opts.max_query_locations = 0;
  EXPECT_FALSE(FindSimilarPairs(*db, opts).ok());
}

}  // namespace
}  // namespace uots

// Workload generation and the parallel batch executor.

#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/euclid_baseline.h"
#include "core/workload.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

const TrajectoryDatabase& TestDb() {
  static auto* db = [] {
    GridNetworkOptions gopts;
    gopts.rows = 18;
    gopts.cols = 18;
    gopts.seed = 21;
    auto g = MakeGridNetwork(gopts);
    TripGeneratorOptions topts;
    topts.num_trajectories = 250;
    topts.vocabulary_size = 120;
    topts.seed = 22;
    auto data = GenerateTrips(*g, topts);
    return new TrajectoryDatabase(std::move(*g), std::move(data->store),
                                  std::move(data->vocabulary));
  }();
  return *db;
}

TEST(Workload, DeterministicAndWellFormed) {
  WorkloadOptions opts;
  opts.num_queries = 10;
  opts.num_locations = 4;
  opts.k = 3;
  auto a = MakeWorkload(TestDb(), opts);
  auto b = MakeWorkload(TestDb(), opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), 10u);
  for (size_t i = 0; i < a->size(); ++i) {
    const UotsQuery& q = (*a)[i];
    EXPECT_TRUE(ValidateQuery(q, TestDb().network().NumVertices()).ok());
    EXPECT_EQ(q.locations.size(), 4u);
    EXPECT_EQ(q.k, 3);
    EXPECT_EQ(q.locations, (*b)[i].locations);
    EXPECT_EQ(q.keywords, (*b)[i].keywords);
    EXPECT_FALSE(q.keywords.empty());
  }
}

TEST(Workload, RejectsBadOptions) {
  WorkloadOptions opts;
  opts.num_locations = 0;
  EXPECT_FALSE(MakeWorkload(TestDb(), opts).ok());
  opts = {};
  opts.lambda = 2.0;
  EXPECT_FALSE(MakeWorkload(TestDb(), opts).ok());
  opts = {};
  opts.keyword_noise = -0.1;
  EXPECT_FALSE(MakeWorkload(TestDb(), opts).ok());
}

TEST(Workload, FailsOnEmptyDatabase) {
  GridNetworkOptions gopts;
  gopts.rows = 4;
  gopts.cols = 4;
  auto g = MakeGridNetwork(gopts);
  TrajectoryDatabase empty(std::move(*g), TrajectoryStore());
  EXPECT_FALSE(MakeWorkload(empty, {}).ok());
}

TEST(Batch, MatchesSequentialExecution) {
  WorkloadOptions wopts;
  wopts.num_queries = 12;
  wopts.k = 5;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());

  BatchOptions seq;
  seq.threads = 1;
  BatchOptions par;
  par.threads = 4;
  auto rs = RunBatch(TestDb(), *queries, seq);
  auto rp = RunBatch(TestDb(), *queries, par);
  ASSERT_TRUE(rs.ok() && rp.ok());
  ASSERT_EQ(rs->answers.size(), queries->size());
  ASSERT_EQ(rp->answers.size(), queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    ASSERT_EQ(rs->answers[i].size(), rp->answers[i].size()) << "query " << i;
    for (size_t j = 0; j < rs->answers[i].size(); ++j) {
      EXPECT_EQ(rs->answers[i][j].id, rp->answers[i][j].id);
      EXPECT_DOUBLE_EQ(rs->answers[i][j].score, rp->answers[i][j].score);
    }
  }
  // Work counters are thread-count independent (same total work).
  EXPECT_EQ(rs->total.visited_trajectories, rp->total.visited_trajectories);
  EXPECT_EQ(rs->total.settled_vertices, rp->total.settled_vertices);
  EXPECT_GT(rs->QueriesPerSecond(), 0.0);
}

TEST(Batch, EmptyWorkload) {
  auto r = RunBatch(TestDb(), {}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
}

TEST(Batch, PropagatesQueryErrors) {
  std::vector<UotsQuery> queries(1);  // invalid: no locations
  auto r = RunBatch(TestDb(), queries, {});
  EXPECT_FALSE(r.ok());
}

TEST(Batch, FailureReportsWorkloadQueryIndex) {
  WorkloadOptions wopts;
  wopts.num_queries = 5;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());
  (*queries)[2].locations.clear();  // invalidate exactly one query
  BatchOptions opts;
  opts.threads = 1;
  auto r = RunBatch(TestDb(), *queries, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("query 2:"), std::string::npos)
      << r.status().ToString();
}

TEST(Batch, PerShardStatsPartitionTheWorkload) {
  WorkloadOptions wopts;
  wopts.num_queries = 11;  // deliberately not divisible by the shard count
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());
  BatchOptions opts;
  opts.threads = 4;
  auto r = RunBatch(TestDb(), *queries, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->shards.size(), 4u);
  // Shard ranges tile [0, n) in order, and per-shard counters sum to the
  // batch total.
  QueryStats summed;
  size_t expect_begin = 0;
  for (size_t s = 0; s < r->shards.size(); ++s) {
    const ShardStats& shard = r->shards[s];
    EXPECT_EQ(shard.shard, static_cast<int>(s));
    EXPECT_EQ(shard.begin, expect_begin);
    EXPECT_GE(shard.end, shard.begin);
    EXPECT_GE(shard.wall_seconds, 0.0);
    expect_begin = shard.end;
    summed += shard.stats;
  }
  EXPECT_EQ(expect_begin, queries->size());
  EXPECT_EQ(summed.visited_trajectories, r->total.visited_trajectories);
  EXPECT_EQ(summed.settled_vertices, r->total.settled_vertices);
  EXPECT_EQ(summed.candidates, r->total.candidates);
  EXPECT_EQ(summed.TotalPhaseNs(), r->total.TotalPhaseNs());
}

TEST(Batch, LatencyHistogramCountsEveryQuery) {
  WorkloadOptions wopts;
  wopts.num_queries = 9;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());
  BatchOptions opts;
  opts.threads = 3;
  auto r = RunBatch(TestDb(), *queries, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->latency.count(), static_cast<int64_t>(queries->size()));
  EXPECT_LE(r->latency.PercentileNs(50), r->latency.PercentileNs(99));
  EXPECT_LE(r->latency.min_ns(), r->latency.max_ns());
  // The engines record a phase breakdown; at least one phase must have
  // received time across the batch.
  EXPECT_GT(r->total.TotalPhaseNs(), 0);
}

TEST(Batch, QueriesPerSecondGuardsZeroWallTime) {
  BatchResult r;
  r.answers.resize(10);
  r.wall_seconds = 0.0;
  EXPECT_DOUBLE_EQ(r.QueriesPerSecond(), 0.0);
  r.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(r.QueriesPerSecond(), 5.0);
}

TEST(Batch, RejectsBadThreadCount) {
  BatchOptions opts;
  opts.threads = 0;
  EXPECT_FALSE(RunBatch(TestDb(), {}, opts).ok());
}

TEST(Euclidean, RankingIsPlausibleButApproximate) {
  WorkloadOptions wopts;
  wopts.num_queries = 6;
  wopts.k = 10;
  auto queries = MakeWorkload(TestDb(), wopts);
  ASSERT_TRUE(queries.ok());
  auto bf = CreateAlgorithm(TestDb(), AlgorithmKind::kBruteForce);
  auto eu = CreateAlgorithm(TestDb(), AlgorithmKind::kEuclidean);
  double overlap_sum = 0;
  for (const auto& q : *queries) {
    auto rb = bf->Search(q);
    auto re = eu->Search(q);
    ASSERT_TRUE(rb.ok() && re.ok());
    const double ov = ResultOverlap(rb->items, re->items);
    EXPECT_GE(ov, 0.0);
    EXPECT_LE(ov, 1.0);
    overlap_sum += ov;
    // Euclidean distance lower-bounds network distance, so the Euclidean
    // spatial similarity can only be >= the network one.
    for (size_t i = 0; i < re->items.size(); ++i) {
      EXPECT_GE(re->items[i].spatial_sim, -1e-12);
    }
  }
  // On dense grids the two rankings should agree substantially.
  EXPECT_GT(overlap_sum / queries->size(), 0.3);
}

TEST(Euclidean, ResultOverlapFunction) {
  std::vector<ScoredTrajectory> a = {{1, 1, 0, 0}, {2, 0.9, 0, 0}};
  std::vector<ScoredTrajectory> b = {{2, 1, 0, 0}, {3, 0.9, 0, 0}};
  EXPECT_DOUBLE_EQ(ResultOverlap(a, b), 0.5);
  EXPECT_DOUBLE_EQ(ResultOverlap(a, a), 1.0);
  EXPECT_DOUBLE_EQ(ResultOverlap({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ResultOverlap(a, {}), 0.0);
}

}  // namespace
}  // namespace uots

// QueryStats: phase accounting, aggregation, and rendering.

#include <gtest/gtest.h>

#include <string>

#include "util/counters.h"

namespace uots {
namespace {

TEST(QueryPhase, NamesAreStable) {
  EXPECT_STREQ(ToString(QueryPhase::kTextualFilter), "textual_filter");
  EXPECT_STREQ(ToString(QueryPhase::kSpatialExpansion), "spatial_expansion");
  EXPECT_STREQ(ToString(QueryPhase::kBoundMaintenance), "bound_maintenance");
  EXPECT_STREQ(ToString(QueryPhase::kScheduling), "scheduling");
  EXPECT_STREQ(ToString(QueryPhase::kRefinement), "refinement");
}

TEST(QueryStats, PhaseAccessors) {
  QueryStats s;
  EXPECT_EQ(s.TotalPhaseNs(), 0);
  s.phase_ns[static_cast<int>(QueryPhase::kSpatialExpansion)] = 2'000'000;
  s.phase_ns[static_cast<int>(QueryPhase::kRefinement)] = 500'000;
  EXPECT_EQ(s.PhaseNs(QueryPhase::kSpatialExpansion), 2'000'000);
  EXPECT_DOUBLE_EQ(s.PhaseMillis(QueryPhase::kSpatialExpansion), 2.0);
  EXPECT_EQ(s.TotalPhaseNs(), 2'500'000);
}

TEST(QueryStats, ScopedPhaseAccumulates) {
  QueryStats s;
  {
    ScopedPhase phase(&s, QueryPhase::kBoundMaintenance);
    // Any amount of work; the scope must account a non-negative duration.
  }
  {
    ScopedPhase phase(&s, QueryPhase::kBoundMaintenance);
  }
  EXPECT_GE(s.PhaseNs(QueryPhase::kBoundMaintenance), 0);
  EXPECT_EQ(s.PhaseNs(QueryPhase::kScheduling), 0);
}

TEST(QueryStats, PlusEqualsSumsEverything) {
  QueryStats a, b;
  a.visited_trajectories = 3;
  a.candidates = 2;
  a.phase_ns[0] = 100;
  a.phase_ns[4] = 50;
  a.elapsed_ms = 1.5;
  b.visited_trajectories = 7;
  b.candidates = 1;
  b.phase_ns[0] = 900;
  b.phase_ns[2] = 30;
  b.elapsed_ms = 0.5;
  a += b;
  EXPECT_EQ(a.visited_trajectories, 10);
  EXPECT_EQ(a.candidates, 3);
  EXPECT_EQ(a.phase_ns[0], 1000);
  EXPECT_EQ(a.phase_ns[2], 30);
  EXPECT_EQ(a.phase_ns[4], 50);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, 2.0);
}

TEST(QueryStats, ToStringIncludesCountersAndPhases) {
  QueryStats s;
  s.visited_trajectories = 42;
  s.phase_ns[static_cast<int>(QueryPhase::kTextualFilter)] = 3'000'000;
  const std::string str = s.ToString();
  EXPECT_NE(str.find("visited=42"), std::string::npos);
  EXPECT_NE(str.find("textual_filter=3ms"), std::string::npos);
  EXPECT_NE(str.find("phases["), std::string::npos);
}

TEST(QueryStats, ToJsonIsWellFormed) {
  QueryStats s;
  s.visited_trajectories = 5;
  s.candidates = 4;
  s.phase_ns[static_cast<int>(QueryPhase::kRefinement)] = 1'500'000;
  s.elapsed_ms = 2.25;
  const std::string json = s.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"visited_trajectories\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"candidates\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"phase_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"refinement\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"elapsed_ms\": 2.25"), std::string::npos);
}

}  // namespace
}  // namespace uots

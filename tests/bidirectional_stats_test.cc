// Bidirectional Dijkstra and dataset statistics.

#include <gtest/gtest.h>

#include "net/bidirectional.h"
#include "net/generators.h"
#include "traj/generator.h"
#include "traj/stats.h"
#include "util/rng.h"

namespace uots {
namespace {

class BidirectionalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BidirectionalPropertyTest, MatchesUnidirectionalDijkstra) {
  RandomGeometricOptions opts;
  opts.num_vertices = 300;
  opts.seed = GetParam();
  auto g = MakeRandomGeometricNetwork(opts);
  ASSERT_TRUE(g.ok());
  BidirectionalDijkstra bidir(*g);
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g->NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g->NumVertices()));
    EXPECT_NEAR(bidir.Distance(s, t), ShortestPathDistance(*g, s, t), 1e-6)
        << "s=" << s << " t=" << t;
  }
}

TEST_P(BidirectionalPropertyTest, SettlesFewerVerticesOnAverage) {
  GridNetworkOptions opts;
  opts.rows = 30;
  opts.cols = 30;
  opts.seed = GetParam();
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok());
  BidirectionalDijkstra bidir(*g);
  Rng rng(GetParam() + 7);
  int64_t bidir_settled = 0;
  int64_t full = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g->NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g->NumVertices()));
    bidir.Distance(s, t);
    bidir_settled += bidir.last_settled();
    full += static_cast<int64_t>(g->NumVertices());
  }
  // Unidirectional settles up to |V| per query; bidirectional should be
  // well under half of that on average for random pairs.
  EXPECT_LT(bidir_settled, full / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidirectionalPropertyTest,
                         ::testing::Values(101, 202, 303));

TEST(Bidirectional, SourceEqualsTarget) {
  GridNetworkOptions opts;
  opts.rows = 5;
  opts.cols = 5;
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok());
  BidirectionalDijkstra bidir(*g);
  EXPECT_DOUBLE_EQ(bidir.Distance(3, 3), 0.0);
  EXPECT_EQ(bidir.last_settled(), 0);
}

TEST(Bidirectional, AdjacentVertices) {
  GraphBuilder b;
  const VertexId v0 = b.AddVertex(Point{0, 0});
  const VertexId v1 = b.AddVertex(Point{5, 0});
  const VertexId v2 = b.AddVertex(Point{10, 0});
  b.AddEdge(v0, v1);
  b.AddEdge(v1, v2);
  auto g = std::move(b).Finalize();
  ASSERT_TRUE(g.ok());
  BidirectionalDijkstra bidir(*g);
  EXPECT_DOUBLE_EQ(bidir.Distance(v0, v1), 5.0);
  EXPECT_DOUBLE_EQ(bidir.Distance(v0, v2), 10.0);
}

TEST(Summarize, FiveNumberValues) {
  const DistributionSummary s = Summarize({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.p50, 3);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  const DistributionSummary empty = Summarize({});
  EXPECT_DOUBLE_EQ(empty.mean, 0);
}

TEST(DatasetStats, ReflectsGeneratorProperties) {
  GridNetworkOptions gopts;
  gopts.rows = 25;
  gopts.cols = 25;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 300;
  topts.min_keywords = 3;
  topts.max_keywords = 10;
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  const DatasetStats stats = ComputeDatasetStats(*g, data->store);
  EXPECT_EQ(stats.num_trajectories, 300u);
  EXPECT_EQ(stats.total_samples, data->store.TotalSamples());
  EXPECT_GE(stats.samples_per_trajectory.min, 2.0);
  EXPECT_GE(stats.keywords_per_trajectory.min, 1.0);
  EXPECT_LE(stats.keywords_per_trajectory.max, 10.0);
  EXPECT_GT(stats.duration_minutes.mean, 0.0);
  EXPECT_GT(stats.vertex_coverage, 0.3);
  EXPECT_LE(stats.vertex_coverage, 1.0);
  // Rush-hour departures: the two busiest hours carry well more than the
  // uniform share of 2/24.
  EXPECT_GT(stats.temporal_skew, 2.0 / 24.0 * 1.5);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(DatasetStats, EmptyStore) {
  GridNetworkOptions gopts;
  gopts.rows = 4;
  gopts.cols = 4;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  const DatasetStats stats = ComputeDatasetStats(*g, TrajectoryStore());
  EXPECT_EQ(stats.num_trajectories, 0u);
  EXPECT_DOUBLE_EQ(stats.vertex_coverage, 0.0);
  EXPECT_DOUBLE_EQ(stats.temporal_skew, 0.0);
}

}  // namespace
}  // namespace uots

// Vocabulary, keyword sets, Zipf sampling, and textual similarity measures.

#include <gtest/gtest.h>

#include <map>

#include "text/keyword_set.h"
#include "text/similarity.h"
#include "text/vocabulary.h"
#include "text/zipf.h"
#include "util/rng.h"

namespace uots {
namespace {

TEST(Vocabulary, InternIsIdempotent) {
  Vocabulary v;
  const TermId a = v.Intern("museum");
  const TermId b = v.Intern("food");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Intern("museum"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.TermOf(a), "museum");
}

TEST(Vocabulary, LookupUnknownReturnsInvalid) {
  Vocabulary v;
  v.Intern("x");
  EXPECT_EQ(v.Lookup("y"), kInvalidTerm);
  EXPECT_EQ(v.Lookup("x"), 0u);
}

TEST(Vocabulary, SyntheticHasDistinctTerms) {
  const Vocabulary v = Vocabulary::Synthetic(250);
  EXPECT_EQ(v.size(), 250u);
  EXPECT_NE(v.TermOf(0), v.TermOf(10));
}

TEST(KeywordSet, NormalizesSortedUnique) {
  const KeywordSet k({5, 1, 5, 3, 1});
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k.ToVector(), (std::vector<TermId>{1, 3, 5}));
  EXPECT_TRUE(k.Contains(3));
  EXPECT_FALSE(k.Contains(2));
}

TEST(KeywordSet, IntersectionAndUnion) {
  const KeywordSet a({1, 2, 3, 4});
  const KeywordSet b({3, 4, 5});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
  EXPECT_EQ(a.UnionSize(b), 5u);
  EXPECT_EQ(a.IntersectionSize(KeywordSet{}), 0u);
  EXPECT_EQ(a.UnionSize(KeywordSet{}), 4u);
}

TEST(Zipf, ProbabilitiesDecreaseWithRank) {
  Rng rng(99);
  ZipfSampler zipf(50, 1.0);
  std::map<size_t, int> hits;
  for (int i = 0; i < 50000; ++i) ++hits[zipf.Sample(rng)];
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[0], 50000 / 50);  // head far above uniform share
  for (const auto& [term, _] : hits) EXPECT_LT(term, 50u);
}

TEST(Zipf, SkewZeroIsUniform) {
  Rng rng(7);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 20000; ++i) ++hits[zipf.Sample(rng)];
  for (int h : hits) EXPECT_NEAR(h, 2000, 350);
}

// --- Similarity measure properties, parameterized over measures. ---

class MeasurePropertyTest : public ::testing::TestWithParam<TextualMeasure> {};

TEST_P(MeasurePropertyTest, RangeSymmetryIdentityDisjoint) {
  TextualSimilarity sim(GetParam());
  if (GetParam() == TextualMeasure::kWeighted) {
    sim.SetDocumentFrequencies({5, 10, 1, 3, 8, 2, 9, 4}, 20);
  }
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<TermId> ta, tb;
    for (int i = 0; i < 6; ++i) {
      ta.push_back(static_cast<TermId>(rng.Uniform(8)));
      tb.push_back(static_cast<TermId>(rng.Uniform(8)));
    }
    const KeywordSet a(ta), b(tb);
    const double sab = sim.Score(a, b);
    EXPECT_GE(sab, 0.0);
    EXPECT_LE(sab, 1.0);
    EXPECT_DOUBLE_EQ(sab, sim.Score(b, a)) << "must be symmetric";
    EXPECT_DOUBLE_EQ(sim.Score(a, a), a.empty() ? 0.0 : 1.0);
  }
  // Disjoint sets score 0.
  EXPECT_DOUBLE_EQ(sim.Score(KeywordSet({0, 1}), KeywordSet({2, 3})), 0.0);
  // Empty sets score 0 under every measure.
  EXPECT_DOUBLE_EQ(sim.Score(KeywordSet{}, KeywordSet({1})), 0.0);
  EXPECT_DOUBLE_EQ(sim.Score(KeywordSet({1}), KeywordSet{}), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Measures, MeasurePropertyTest,
    ::testing::Values(TextualMeasure::kJaccard, TextualMeasure::kDice,
                      TextualMeasure::kOverlap, TextualMeasure::kCosine,
                      TextualMeasure::kWeighted),
    [](const ::testing::TestParamInfo<TextualMeasure>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Similarity, KnownJaccardValue) {
  TextualSimilarity sim(TextualMeasure::kJaccard);
  // |{1,2} ∩ {2,3}| = 1, |union| = 3.
  EXPECT_DOUBLE_EQ(sim.Score(KeywordSet({1, 2}), KeywordSet({2, 3})), 1.0 / 3);
}

TEST(Similarity, KnownDiceValue) {
  TextualSimilarity sim(TextualMeasure::kDice);
  EXPECT_DOUBLE_EQ(sim.Score(KeywordSet({1, 2}), KeywordSet({2, 3})), 0.5);
}

TEST(Similarity, KnownOverlapValue) {
  TextualSimilarity sim(TextualMeasure::kOverlap);
  // Subset scores 1 under the overlap coefficient.
  EXPECT_DOUBLE_EQ(sim.Score(KeywordSet({1, 2}), KeywordSet({1, 2, 3, 4})), 1.0);
}

TEST(Similarity, WeightedFavorsRareTerms) {
  TextualSimilarity sim(TextualMeasure::kWeighted);
  // Term 0 is very common (df=100), term 1 very rare (df=1).
  sim.SetDocumentFrequencies({100, 1}, 100);
  const KeywordSet query({0, 1});
  const double match_rare = sim.Score(query, KeywordSet({1}));
  const double match_common = sim.Score(query, KeywordSet({0}));
  EXPECT_GT(match_rare, match_common);
}

TEST(Similarity, MeasureNames) {
  EXPECT_STREQ(ToString(TextualMeasure::kJaccard), "jaccard");
  EXPECT_STREQ(ToString(TextualMeasure::kWeighted), "weighted-jaccard");
}

}  // namespace
}  // namespace uots

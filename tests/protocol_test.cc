#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/json.h"

namespace uots {
namespace {

// --- framing ---------------------------------------------------------------

TEST(FrameDecoderTest, RoundTripsOneFrame) {
  FrameDecoder dec;
  const std::string frame = EncodeFrame("hello");
  dec.Append(frame.data(), frame.size());
  std::string payload;
  ASSERT_EQ(dec.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(dec.Poll(&payload), FrameDecoder::Next::kNeedMore);
}

TEST(FrameDecoderTest, TruncatedFrameNeedsMoreByteAtATime) {
  FrameDecoder dec;
  const std::string frame = EncodeFrame("payload body");
  std::string payload;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.Append(frame.data() + i, 1);
    EXPECT_EQ(dec.Poll(&payload), FrameDecoder::Next::kNeedMore)
        << "complete frame reported after only " << i + 1 << " bytes";
  }
  dec.Append(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(dec.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, "payload body");
}

TEST(FrameDecoderTest, PipelinedFramesDecodeInOrder) {
  FrameDecoder dec;
  std::string wire;
  for (int i = 0; i < 5; ++i) {
    AppendFrame("frame " + std::to_string(i), &wire);
  }
  dec.Append(wire.data(), wire.size());
  std::string payload;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(dec.Poll(&payload), FrameDecoder::Next::kFrame);
    EXPECT_EQ(payload, "frame " + std::to_string(i));
  }
  EXPECT_EQ(dec.Poll(&payload), FrameDecoder::Next::kNeedMore);
}

TEST(FrameDecoderTest, EmptyPayloadFrameIsValid) {
  FrameDecoder dec;
  const std::string frame = EncodeFrame("");
  dec.Append(frame.data(), frame.size());
  std::string payload = "junk";
  ASSERT_EQ(dec.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, "");
}

TEST(FrameDecoderTest, OversizedFrameIsSkippedAndResyncs) {
  FrameDecoder dec(/*max_frame_bytes=*/16);
  std::string wire;
  AppendFrame(std::string(100, 'x'), &wire);  // too big
  AppendFrame("small", &wire);                // must still decode
  // Feed in small chunks so the skip spans multiple Appends.
  std::string payload;
  size_t oversized = 0;
  bool saw_oversized = false;
  for (size_t off = 0; off < wire.size(); off += 7) {
    const size_t n = std::min<size_t>(7, wire.size() - off);
    dec.Append(wire.data() + off, n);
    for (;;) {
      const FrameDecoder::Next next = dec.Poll(&payload, &oversized);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kOversized) {
        EXPECT_FALSE(saw_oversized) << "oversized frame reported twice";
        saw_oversized = true;
        EXPECT_EQ(oversized, 100u);
        continue;
      }
      EXPECT_EQ(payload, "small");
    }
  }
  EXPECT_TRUE(saw_oversized);
  EXPECT_EQ(payload, "small") << "decoder failed to resync after skip";
}

TEST(FrameDecoderTest, FrameAtExactLimitIsAccepted) {
  FrameDecoder dec(/*max_frame_bytes=*/8);
  const std::string frame = EncodeFrame(std::string(8, 'y'));
  dec.Append(frame.data(), frame.size());
  std::string payload;
  EXPECT_EQ(dec.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload.size(), 8u);
}

// --- request / response codecs --------------------------------------------

QueryRequest MakeRequest() {
  QueryRequest req;
  req.id = 42;
  req.query.locations = {7, 19, 3};
  req.query.keywords = KeywordSet({5, 2, 9});
  req.query.lambda = 0.375;
  req.query.k = 10;
  req.algorithm = AlgorithmKind::kBruteForce;
  req.has_algorithm = true;
  req.deadline_ms = 25.5;
  return req;
}

TEST(ProtocolTest, RequestRoundTrips) {
  const QueryRequest req = MakeRequest();
  auto parsed = ParseQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 42);
  EXPECT_EQ(parsed->query.locations, req.query.locations);
  EXPECT_EQ(parsed->query.keywords, req.query.keywords);
  EXPECT_EQ(parsed->query.lambda, 0.375);
  EXPECT_EQ(parsed->query.k, 10);
  EXPECT_TRUE(parsed->has_algorithm);
  EXPECT_EQ(parsed->algorithm, AlgorithmKind::kBruteForce);
  EXPECT_EQ(parsed->deadline_ms, 25.5);
}

TEST(ProtocolTest, MalformedJsonIsRejected) {
  for (const char* bad : {
           "",                        // empty
           "{",                       // truncated
           "[1,2,3]",                 // not an object
           "{\"id\": 1,}",            // trailing comma
           "{\"id\": 1} extra",       // trailing garbage
           "{\"id\": \"seven\"}",     // non-numeric id
           "not json at all",
       }) {
    EXPECT_FALSE(ParseQueryRequest(bad).ok()) << "accepted: " << bad;
  }
}

TEST(ProtocolTest, SemanticallyInvalidRequestsAreRejected) {
  const QueryRequest base = MakeRequest();
  {
    QueryRequest r = base;  // no locations
    r.query.locations.clear();
    EXPECT_FALSE(ParseQueryRequest(EncodeQueryRequest(r)).ok());
  }
  {
    std::string json = EncodeQueryRequest(base);
    // Unknown algorithm names must be an error, not a silent default.
    const size_t pos = json.find("\"BF\"");
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, 4, "\"XX\"");
    EXPECT_FALSE(ParseQueryRequest(json).ok());
  }
}

TEST(ProtocolTest, CacheModeRoundTrips) {
  // Default mode omits the field entirely and parses back as default.
  QueryRequest req = MakeRequest();
  EXPECT_EQ(EncodeQueryRequest(req).find("cache"), std::string::npos);
  auto parsed = ParseQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->cache, CacheMode::kDefault);

  req.cache = CacheMode::kBypass;
  parsed = ParseQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->cache, CacheMode::kBypass);

  // An explicit "default" is also accepted.
  parsed = ParseQueryRequest(R"({"id":1,"locations":[1,2],"cache":"default"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cache, CacheMode::kDefault);
}

TEST(ProtocolTest, InvalidCacheModeIsRejected) {
  EXPECT_FALSE(
      ParseQueryRequest(R"({"id":1,"locations":[1,2],"cache":"maybe"})").ok());
  EXPECT_FALSE(
      ParseQueryRequest(R"({"id":1,"locations":[1,2],"cache":7})").ok());
}

TEST(ProtocolTest, CachedFlagRoundTrips) {
  QueryResponse resp;
  resp.id = 3;
  resp.status = ResponseStatus::kOk;
  resp.results.push_back(ScoredTrajectory{1, 0.5, 0.5, 0.5});
  // Fresh responses omit the flag and parse back as not-cached.
  EXPECT_EQ(EncodeQueryResponse(resp).find("cached"), std::string::npos);
  auto parsed = ParseQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->cached);

  resp.cached = true;
  parsed = ParseQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->cached);
}

TEST(ProtocolTest, RequestIdRoundTrips) {
  QueryRequest req = MakeRequest();
  // Absent by default: no wire bytes spent, parses back empty.
  EXPECT_EQ(EncodeQueryRequest(req).find("request_id"), std::string::npos);
  auto parsed = ParseQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->request_id.empty());

  req.request_id = "cli-42/abc";
  parsed = ParseQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->request_id, "cli-42/abc");
}

TEST(ProtocolTest, OverlongRequestIdIsRejected) {
  QueryRequest req = MakeRequest();
  req.request_id = std::string(kMaxRequestIdBytes, 'x');
  EXPECT_TRUE(ParseQueryRequest(EncodeQueryRequest(req)).ok())
      << "exactly at the cap must be accepted";
  req.request_id = std::string(kMaxRequestIdBytes + 1, 'x');
  EXPECT_FALSE(ParseQueryRequest(EncodeQueryRequest(req)).ok());
  EXPECT_FALSE(
      ParseQueryRequest(R"({"id":1,"locations":[1,2],"request_id":7})").ok())
      << "non-string request_id must be rejected";
}

TEST(ProtocolTest, ResponseRequestIdRoundTrips) {
  QueryResponse resp;
  resp.id = 4;
  resp.status = ResponseStatus::kOk;
  resp.request_id = "s3-17";
  auto parsed = ParseQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->request_id, "s3-17");

  // Errors carry the id too — correlation must survive failure paths.
  resp.status = ResponseStatus::kParseError;
  resp.error = "bad frame";
  parsed = ParseQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->request_id, "s3-17");
  EXPECT_EQ(parsed->status, ResponseStatus::kParseError);

  resp.request_id.clear();
  EXPECT_EQ(EncodeQueryResponse(resp).find("request_id"), std::string::npos);
}

TEST(ProtocolTest, ResponseRoundTripsExactDoubles) {
  QueryResponse resp;
  resp.id = 7;
  resp.status = ResponseStatus::kOk;
  // Scores chosen to require full round-trip precision.
  resp.results.push_back(ScoredTrajectory{3, 0.1 + 0.2, 1.0 / 3.0, 0.7});
  resp.results.push_back(ScoredTrajectory{11, 5e-324, 0.0, 1.0});
  resp.has_stats = true;
  resp.stats.visited_trajectories = 123;
  resp.queue_wait_ms = 0.25;
  resp.execute_ms = 3.75;

  auto parsed = ParseQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 7);
  EXPECT_TRUE(parsed->ok());
  ASSERT_EQ(parsed->results.size(), 2u);
  EXPECT_EQ(parsed->results[0].id, 3u);
  EXPECT_EQ(parsed->results[0].score, 0.1 + 0.2) << "score bits changed";
  EXPECT_EQ(parsed->results[0].spatial_sim, 1.0 / 3.0);
  EXPECT_EQ(parsed->results[1].score, 5e-324) << "denormal bits changed";
  EXPECT_EQ(parsed->queue_wait_ms, 0.25);
  EXPECT_EQ(parsed->execute_ms, 3.75);
}

TEST(ProtocolTest, ErrorResponseRoundTrips) {
  QueryResponse resp;
  resp.id = 9;
  resp.status = ResponseStatus::kOverloaded;
  resp.error = "server at capacity";
  auto parsed = ParseQueryResponse(EncodeQueryResponse(resp));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status, ResponseStatus::kOverloaded);
  EXPECT_TRUE(parsed->retryable());
  EXPECT_EQ(parsed->error, "server at capacity");
}

TEST(ProtocolTest, StatusNamesRoundTrip) {
  for (ResponseStatus s : {
           ResponseStatus::kOk, ResponseStatus::kParseError,
           ResponseStatus::kInvalidArgument, ResponseStatus::kOverloaded,
           ResponseStatus::kDeadlineExceeded, ResponseStatus::kShuttingDown,
           ResponseStatus::kInternal,
       }) {
    EXPECT_EQ(ParseResponseStatus(ToString(s)), s);
  }
  EXPECT_TRUE(IsRetryable(ResponseStatus::kOverloaded));
  EXPECT_TRUE(IsRetryable(ResponseStatus::kShuttingDown));
  EXPECT_FALSE(IsRetryable(ResponseStatus::kOk));
  EXPECT_FALSE(IsRetryable(ResponseStatus::kDeadlineExceeded));
}

TEST(ProtocolTest, AlgorithmNamesParseCaseInsensitively) {
  auto a = ParseAlgorithmKind("uots");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, AlgorithmKind::kUots);
  auto b = ParseAlgorithmKind("BF");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, AlgorithmKind::kBruteForce);
  EXPECT_FALSE(ParseAlgorithmKind("nope").ok());
}

// --- JSON primitives used by the codecs ------------------------------------

TEST(JsonTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2.5, "x", true, null], "b": {"c": -3}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array_items().size(), 5u);
  EXPECT_EQ(a->array_items()[1].number_value(), 2.5);
  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_EQ(b->Find("c")->number_value(), -3.0);
}

TEST(JsonTest, EscapesRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("s", JsonValue::Str("quote\" slash\\ tab\t newline\n unicode\x01"));
  auto parsed = ParseJson(obj.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("s")->string_value(),
            "quote\" slash\\ tab\t newline\n unicode\x01");
}

TEST(JsonTest, RejectsDeeplyNestedInput) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok()) << "depth cap missing";
}

}  // namespace
}  // namespace uots

// Trip assembly over the wire (DESIGN.md §12): protocol round-trips, and
// the end-to-end determinism contract — the bytes a client gets back are
// bit-for-bit identical whether the result cache served them or not, and
// before vs after a live compaction folds the delta into the base. Both
// are checked against a cold in-process planner, which is exactly what
// `uots_client --trip --verify` does in CI.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/generators.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "traj/generator.h"
#include "trip/planner.h"
#include "trip/workload.h"

namespace uots {
namespace {

constexpr int kVocab = 120;

RoadNetwork MakeNet() {
  GridNetworkOptions opts;
  opts.rows = 15;
  opts.cols = 15;
  opts.seed = 91;
  auto net = MakeGridNetwork(opts);
  EXPECT_TRUE(net.ok());
  return std::move(*net);
}

std::shared_ptr<TrajectoryDatabase> MakeDb(const RoadNetwork& net,
                                           int trajectories, uint64_t seed) {
  TripGeneratorOptions opts;
  opts.num_trajectories = trajectories;
  opts.vocabulary_size = kVocab;
  opts.seed = seed;
  auto gen = GenerateTrips(net, opts);
  EXPECT_TRUE(gen.ok());
  return std::make_shared<TrajectoryDatabase>(net, std::move(gen->store),
                                              std::move(gen->vocabulary));
}

std::vector<Trajectory> MakeRows(const RoadNetwork& net, int n,
                                 uint64_t seed) {
  TripGeneratorOptions opts;
  opts.num_trajectories = n;
  opts.vocabulary_size = kVocab;
  opts.seed = seed;
  auto gen = GenerateTrips(net, opts);
  EXPECT_TRUE(gen.ok());
  std::vector<Trajectory> rows;
  rows.reserve(gen->store.size());
  for (size_t i = 0; i < gen->store.size(); ++i) {
    rows.push_back(gen->store.Materialize(static_cast<TrajId>(i)));
  }
  return rows;
}

std::vector<TripQuery> MakeQueries(const TrajectoryDatabase& db, int n) {
  TripWorkloadOptions wopts;
  wopts.num_queries = n;
  wopts.num_locations = 4;
  wopts.k = 3;
  wopts.seed = 47;
  auto queries = MakeTripWorkload(db, wopts);
  EXPECT_TRUE(queries.ok());
  return std::move(*queries);
}

TEST(TripServerTest, RequestRoundTripsThroughTheWire) {
  TripRequest req;
  req.id = 42;
  req.request_id = "cli-7";
  req.query.locations = {9, 2, 31};
  req.query.keywords = KeywordSet{5, 1, 17};
  req.query.lambda = 0.375;  // exactly representable
  req.query.k = 4;
  req.query.ordered = true;
  req.query.use_categories = true;
  req.query.gap_budget_m = 1250.5;
  req.query.segments_per_location = 12;
  req.query.window = 6;
  req.deadline_ms = 750.0;
  req.cache = CacheMode::kBypass;

  auto parsed = ParseTripRequest(EncodeTripRequest(req));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, req.id);
  EXPECT_EQ(parsed->request_id, req.request_id);
  EXPECT_EQ(parsed->query.locations, req.query.locations);
  EXPECT_EQ(parsed->query.keywords.ToVector(), req.query.keywords.ToVector());
  EXPECT_EQ(parsed->query.lambda, req.query.lambda);
  EXPECT_EQ(parsed->query.k, req.query.k);
  EXPECT_EQ(parsed->query.ordered, req.query.ordered);
  EXPECT_EQ(parsed->query.use_categories, req.query.use_categories);
  EXPECT_EQ(parsed->query.gap_budget_m, req.query.gap_budget_m);
  EXPECT_EQ(parsed->query.segments_per_location,
            req.query.segments_per_location);
  EXPECT_EQ(parsed->query.window, req.query.window);
  EXPECT_EQ(parsed->deadline_ms, req.deadline_ms);
  EXPECT_EQ(parsed->cache, req.cache);
}

TEST(TripServerTest, ResponseRoundTripsBitForBit) {
  TripResponse resp;
  resp.id = 7;
  resp.request_id = "s12-3";
  resp.cached = true;
  resp.queue_wait_ms = 0.125;
  resp.execute_ms = 17.03125;
  AssembledTrip trip;
  // Awkward doubles on purpose: %.17g emission must reproduce every bit.
  trip.score = 0.1 + 0.2;
  trip.spatial_sim = 1.0 / 3.0;
  trip.textual_sim = 2.0 / 7.0;
  trip.connector_total_m = 1234.5678901234567;
  TripSegment seg;
  seg.traj = 8812;
  seg.begin = 3;
  seg.end = 11;
  seg.entry = 4471;
  seg.exit = 902;
  seg.loc_distance = 617.28394061728398;
  seg.connector_m = 0.0;
  trip.segments.push_back(seg);
  seg.traj = 17;
  seg.connector_m = 3081.4159265358979;
  trip.segments.push_back(seg);
  resp.trips.push_back(trip);

  auto parsed = ParseTripResponse(EncodeTripResponse(resp));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, resp.id);
  EXPECT_EQ(parsed->request_id, resp.request_id);
  EXPECT_EQ(parsed->status, ResponseStatus::kOk);
  EXPECT_TRUE(parsed->cached);
  EXPECT_EQ(parsed->queue_wait_ms, resp.queue_wait_ms);
  EXPECT_EQ(parsed->execute_ms, resp.execute_ms);
  // AssembledTrip::operator== is exact double equality.
  EXPECT_TRUE(parsed->trips == resp.trips);

  TripResponse err;
  err.id = 8;
  err.status = ResponseStatus::kOverloaded;
  err.error = "queue full";
  auto eparsed = ParseTripResponse(EncodeTripResponse(err));
  ASSERT_TRUE(eparsed.ok()) << eparsed.status().ToString();
  EXPECT_EQ(eparsed->status, ResponseStatus::kOverloaded);
  EXPECT_EQ(eparsed->error, "queue full");
  EXPECT_TRUE(eparsed->retryable());
  EXPECT_TRUE(eparsed->trips.empty());
}

TEST(TripServerTest, CacheOnOffServesIdenticalBits) {
  const RoadNetwork net = MakeNet();
  auto db = MakeDb(net, 150, 22);
  const auto queries = MakeQueries(*db, 6);

  ServerOptions opts;
  opts.port = 0;
  opts.service.threads = 2;
  opts.service.cache_max_entries = 64;
  UotsServer server(std::shared_ptr<const TrajectoryDatabase>(db), opts);
  ASSERT_TRUE(server.Start().ok());
  std::thread loop([&] { server.Run(); });

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // The cold in-process reference — what --verify compares against.
  TripPlanner local(*db);

  for (size_t i = 0; i < queries.size(); ++i) {
    TripRequest req;
    req.id = static_cast<int64_t>(i);
    req.query = queries[i];

    auto first = client.Call(req);  // compute + populate
    ASSERT_TRUE(first.ok() && first->ok()) << first.status().ToString();
    EXPECT_FALSE(first->cached);

    auto second = client.Call(req);  // served from the cache
    ASSERT_TRUE(second.ok() && second->ok());
    EXPECT_TRUE(second->cached);

    req.cache = CacheMode::kBypass;  // forced recompute
    auto third = client.Call(req);
    ASSERT_TRUE(third.ok() && third->ok());
    EXPECT_FALSE(third->cached);

    EXPECT_TRUE(first->trips == second->trips) << "query " << i;
    EXPECT_TRUE(first->trips == third->trips) << "query " << i;

    auto ref = local.Plan(queries[i]);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_TRUE(first->trips == ref->trips) << "query " << i;
    EXPECT_FALSE(first->trips.empty()) << "query " << i;
  }

  server.RequestShutdown();
  loop.join();
}

TEST(TripServerTest, CompactionPreservesTripAnswersBitForBit) {
  const RoadNetwork net = MakeNet();
  auto db = MakeDb(net, 120, 22);
  const std::vector<Trajectory> extra = MakeRows(net, 30, 77);

  const std::string snap_path =
      ::testing::TempDir() + "/uots_trip_compact.snap";
  ServerOptions opts;
  opts.port = 0;
  opts.admin.port = 0;  // ephemeral admin plane for POST /compact
  opts.service.threads = 2;
  opts.service.cache_max_entries = 64;
  opts.compact_snapshot_path = snap_path;
  UotsServer server(std::shared_ptr<const TrajectoryDatabase>(db), opts);
  ASSERT_TRUE(server.Start().ok());
  std::thread loop([&] { server.Run(); });

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  IngestRequest ireq;
  ireq.id = 1;
  ireq.trajectories = extra;
  auto iresp = client.Call(ireq);
  ASSERT_TRUE(iresp.ok()) << iresp.status().ToString();
  ASSERT_TRUE(iresp->ok()) << iresp->error;

  // Draw the workload over a database that contains base + delta, so
  // live-ingested trips are harvestable and do participate.
  TrajectoryStore merged;
  for (size_t i = 0; i < db->store().size(); ++i) {
    ASSERT_TRUE(merged.Add(db->store().Materialize(static_cast<TrajId>(i)))
                    .ok());
  }
  for (const auto& t : extra) ASSERT_TRUE(merged.Add(t).ok());
  TrajectoryDatabase rebuilt(net, std::move(merged), db->vocabulary());
  const auto queries = MakeQueries(rebuilt, 6);

  // Pre-compaction answers are served through the delta overlay.
  std::vector<TripResponse> before;
  for (size_t i = 0; i < queries.size(); ++i) {
    TripRequest req;
    req.id = static_cast<int64_t>(i);
    req.query = queries[i];
    auto resp = client.Call(req);
    ASSERT_TRUE(resp.ok() && resp->ok()) << resp.status().ToString();
    before.push_back(std::move(*resp));
  }

  auto post = HttpFetch("127.0.0.1", server.admin_port(), "/compact", "POST");
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post->status, 202);
  bool compacted = false;
  for (int i = 0; i < 200 && !compacted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto statusz =
        HttpFetch("127.0.0.1", server.admin_port(), "/statusz", "GET");
    ASSERT_TRUE(statusz.ok());
    compacted =
        statusz->body.find("\"compacting\":false") != std::string::npos &&
        statusz->body.find("\"compactions\":1") != std::string::npos;
  }
  ASSERT_TRUE(compacted) << "compaction did not finish in 10s";

  // Global trajectory ids are stable across the fold, so every assembled
  // trip — provenance, connectors, scores — must be byte-identical, and a
  // cold planner over the equivalent rebuilt database must agree too.
  TripPlanner local(rebuilt);
  for (size_t i = 0; i < queries.size(); ++i) {
    TripRequest req;
    req.id = 100 + static_cast<int64_t>(i);
    req.query = queries[i];
    auto after = client.Call(req);
    ASSERT_TRUE(after.ok() && after->ok()) << after.status().ToString();
    // The compaction swap bumps the live fingerprint: pre-compaction cache
    // entries are unreachable, so this is a fresh computation.
    EXPECT_FALSE(after->cached) << "query " << i;
    EXPECT_TRUE(after->trips == before[i].trips) << "query " << i;
    auto ref = local.Plan(queries[i]);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_TRUE(after->trips == ref->trips) << "query " << i;
    EXPECT_FALSE(after->trips.empty()) << "query " << i;
  }

  server.RequestShutdown();
  loop.join();
  std::remove(snap_path.c_str());
}

}  // namespace
}  // namespace uots

#include "net/graph.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "net/io.h"

namespace uots {
namespace {

RoadNetwork MakeTriangle() {
  GraphBuilder b;
  const VertexId v0 = b.AddVertex(Point{0, 0});
  const VertexId v1 = b.AddVertex(Point{3, 0});
  const VertexId v2 = b.AddVertex(Point{0, 4});
  b.AddEdge(v0, v1);
  b.AddEdge(v1, v2);
  b.AddEdge(v2, v0);
  auto g = std::move(b).Finalize();
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

TEST(GraphBuilder, BuildsTriangle) {
  const RoadNetwork g = MakeTriangle();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.DegreeOf(0), 2u);
  // Default weights are Euclidean lengths.
  double w01 = -1;
  for (const auto& e : g.Neighbors(0)) {
    if (e.to == 1) w01 = e.weight;
  }
  EXPECT_DOUBLE_EQ(w01, 3.0);
  EXPECT_NEAR(g.TotalEdgeLength(), 3 + 4 + 5, 1e-3);
}

TEST(GraphBuilder, ExplicitWeightOverridesEuclidean) {
  GraphBuilder b;
  const VertexId v0 = b.AddVertex(Point{0, 0});
  const VertexId v1 = b.AddVertex(Point{1, 0});
  b.AddEdge(v0, v1, 99.0);
  auto g = std::move(b).Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->Neighbors(0)[0].weight, 99.0);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b;
  b.AddVertex(Point{0, 0});
  b.AddVertex(Point{1, 0});
  b.AddEdge(0, 0, 1.0);
  EXPECT_FALSE(std::move(b).Finalize().ok());
}

TEST(GraphBuilder, RejectsDuplicateEdgeEitherDirection) {
  GraphBuilder b;
  b.AddVertex(Point{0, 0});
  b.AddVertex(Point{1, 0});
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  EXPECT_FALSE(std::move(b).Finalize().ok());
}

TEST(GraphBuilder, RejectsDanglingEndpoint) {
  GraphBuilder b;
  b.AddVertex(Point{0, 0});
  b.AddEdge(0, 5, 1.0);
  EXPECT_FALSE(std::move(b).Finalize().ok());
}

TEST(GraphBuilder, RejectsNonPositiveWeight) {
  GraphBuilder b;
  b.AddVertex(Point{0, 0});
  b.AddVertex(Point{1, 0});
  b.AddEdge(0, 1, 0.0);
  EXPECT_FALSE(std::move(b).Finalize().ok());
}

TEST(GraphBuilder, RejectsEmptyGraph) {
  GraphBuilder b;
  EXPECT_FALSE(std::move(b).Finalize().ok());
}

TEST(GraphBuilder, DisconnectedRejectedUnlessAllowed) {
  GraphBuilder b1;
  b1.AddVertex(Point{0, 0});
  b1.AddVertex(Point{1, 0});
  b1.AddVertex(Point{5, 5});
  b1.AddVertex(Point{6, 5});
  b1.AddEdge(0, 1);
  b1.AddEdge(2, 3);
  EXPECT_FALSE(std::move(b1).Finalize(true).ok());

  GraphBuilder b2;
  b2.AddVertex(Point{0, 0});
  b2.AddVertex(Point{1, 0});
  b2.AddVertex(Point{5, 5});
  b2.AddVertex(Point{6, 5});
  b2.AddEdge(0, 1);
  b2.AddEdge(2, 3);
  auto g = std::move(b2).Finalize(false);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(IsConnected(*g));
}

TEST(Graph, AdjacencyIsSymmetric) {
  const RoadNetwork g = MakeTriangle();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const auto& e : g.Neighbors(v)) {
      bool back = false;
      for (const auto& r : g.Neighbors(e.to)) {
        if (r.to == v && r.weight == e.weight) back = true;
      }
      EXPECT_TRUE(back) << "edge " << v << "->" << e.to;
    }
  }
}

TEST(Graph, BoundsCoverAllVertices) {
  const RoadNetwork g = MakeTriangle();
  const BBox box = g.Bounds();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_TRUE(box.Contains(g.PositionOf(v)));
  }
}

TEST(Graph, MemoryUsagePositive) {
  EXPECT_GT(MakeTriangle().MemoryUsage(), 0u);
}

TEST(NetworkIO, SaveLoadRoundTrip) {
  const RoadNetwork g = MakeTriangle();
  const std::string path = testing::TempDir() + "/uots_net_roundtrip.txt";
  ASSERT_TRUE(SaveNetwork(g, path).ok());
  auto loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(loaded->PositionOf(v).x, g.PositionOf(v).x, 1e-3);
    EXPECT_NEAR(loaded->PositionOf(v).y, g.PositionOf(v).y, 1e-3);
    EXPECT_EQ(loaded->DegreeOf(v), g.DegreeOf(v));
  }
  std::remove(path.c_str());
}

TEST(NetworkIO, LoadMissingFileFails) {
  EXPECT_FALSE(LoadNetwork("/nonexistent/path/net.txt").ok());
}

TEST(NetworkIO, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/uots_net_garbage.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a network file\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadNetwork(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uots

#include "net/generators.h"

#include <gtest/gtest.h>

namespace uots {
namespace {

TEST(GridNetwork, ShapeAndConnectivity) {
  GridNetworkOptions opts;
  opts.rows = 12;
  opts.cols = 15;
  opts.removal_rate = 0.2;
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 12u * 15u);
  EXPECT_TRUE(IsConnected(*g));
  // Removal keeps at least the spanning tree and at most the full grid.
  const size_t full = 12 * 14 + 11 * 15;
  EXPECT_GE(g->NumEdges(), g->NumVertices() - 1);
  EXPECT_LE(g->NumEdges(), full);
}

TEST(GridNetwork, ZeroRemovalKeepsFullGrid) {
  GridNetworkOptions opts;
  opts.rows = 5;
  opts.cols = 7;
  opts.removal_rate = 0.0;
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 5u * 6 + 4u * 7);
}

TEST(GridNetwork, DeterministicForSeed) {
  GridNetworkOptions opts;
  opts.rows = 8;
  opts.cols = 8;
  opts.seed = 99;
  auto a = MakeGridNetwork(opts);
  auto b = MakeGridNetwork(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (VertexId v = 0; v < a->NumVertices(); ++v) {
    EXPECT_EQ(a->PositionOf(v).x, b->PositionOf(v).x);
    ASSERT_EQ(a->DegreeOf(v), b->DegreeOf(v));
  }
}

TEST(GridNetwork, RejectsBadOptions) {
  GridNetworkOptions opts;
  opts.rows = 1;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
  opts.rows = 5;
  opts.removal_rate = 1.0;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
}

TEST(RingRadialNetwork, ConnectedWithExpectedScale) {
  RingRadialNetworkOptions opts;
  opts.rings = 10;
  opts.inner_ring_vertices = 8;
  auto g = MakeRingRadialNetwork(opts);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(IsConnected(*g));
  // Ring k has ~8(k+1) vertices -> total ~ 8 * 55 = 440 plus centre.
  EXPECT_GT(g->NumVertices(), 300u);
  EXPECT_LT(g->NumVertices(), 600u);
}

TEST(RingRadialNetwork, RadialRateIncreasesEdges) {
  RingRadialNetworkOptions sparse, dense;
  sparse.rings = dense.rings = 8;
  sparse.radial_rate = 0.1;
  dense.radial_rate = 0.9;
  auto gs = MakeRingRadialNetwork(sparse);
  auto gd = MakeRingRadialNetwork(dense);
  ASSERT_TRUE(gs.ok() && gd.ok());
  EXPECT_GT(gd->NumEdges(), gs->NumEdges());
}

TEST(RingRadialNetwork, RejectsBadOptions) {
  RingRadialNetworkOptions opts;
  opts.rings = 0;
  EXPECT_FALSE(MakeRingRadialNetwork(opts).ok());
  opts.rings = 3;
  opts.radial_rate = 0.0;
  EXPECT_FALSE(MakeRingRadialNetwork(opts).ok());
}

TEST(RandomGeometricNetwork, ConnectedAtVariousSizes) {
  for (int n : {10, 100, 400}) {
    RandomGeometricOptions opts;
    opts.num_vertices = n;
    opts.seed = 17 + n;
    auto g = MakeRandomGeometricNetwork(opts);
    ASSERT_TRUE(g.ok()) << "n=" << n << ": " << g.status().ToString();
    EXPECT_EQ(g->NumVertices(), static_cast<size_t>(n));
    EXPECT_TRUE(IsConnected(*g));
  }
}

TEST(RandomGeometricNetwork, DegreeBoundedByConstruction) {
  RandomGeometricOptions opts;
  opts.num_vertices = 300;
  opts.k_nearest = 3;
  auto g = MakeRandomGeometricNetwork(opts);
  ASSERT_TRUE(g.ok());
  double total_degree = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) total_degree += g->DegreeOf(v);
  // Mean degree is around 2*k (k out-choices, symmetrized) plus stitches.
  EXPECT_LT(total_degree / g->NumVertices(), 2.0 * 2 * opts.k_nearest);
}

TEST(RandomGeometricNetwork, RejectsBadOptions) {
  RandomGeometricOptions opts;
  opts.num_vertices = 1;
  EXPECT_FALSE(MakeRandomGeometricNetwork(opts).ok());
  opts.num_vertices = 10;
  opts.k_nearest = 0;
  EXPECT_FALSE(MakeRandomGeometricNetwork(opts).ok());
}

TEST(Generators, AllEdgesHavePositiveFiniteWeights) {
  auto g = MakeRingRadialNetwork({});
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    for (const auto& e : g->Neighbors(v)) {
      EXPECT_GT(e.weight, 0.0f);
      EXPECT_TRUE(std::isfinite(e.weight));
    }
  }
}

}  // namespace
}  // namespace uots

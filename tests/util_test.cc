// Tests for string helpers, versioned arrays, counters, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/counters.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/versioned.h"

namespace uots {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleToken) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringUtil, JoinRoundTripsSplit) {
  const std::vector<std::string> items = {"a", "b", "c"};
  EXPECT_EQ(Join(items, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("uots-network 1", "uots-network"));
  EXPECT_FALSE(StartsWith("uots", "uots-network"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(VersionedArray, ResetInvalidatesAllEntries) {
  VersionedArray<int> a(4);
  a.Set(1, 7);
  EXPECT_TRUE(a.Has(1));
  EXPECT_EQ(a.Get(1), 7);
  EXPECT_FALSE(a.Has(0));
  EXPECT_EQ(a.Get(0, -1), -1);
  a.Reset();
  EXPECT_FALSE(a.Has(1));
  EXPECT_EQ(a.Get(1, -1), -1);
}

TEST(VersionedArray, RefDefaultInitializes) {
  VersionedArray<double> a(2);
  a.Ref(0) += 1.5;
  a.Ref(0) += 1.5;
  EXPECT_DOUBLE_EQ(a.Get(0), 3.0);
  a.Reset();
  a.Ref(0) += 2.0;  // starts fresh after reset
  EXPECT_DOUBLE_EQ(a.Get(0), 2.0);
}

TEST(VersionedArray, SurvivesManyResets) {
  VersionedArray<int> a(1);
  for (int round = 0; round < 100000; ++round) {
    EXPECT_FALSE(a.Has(0));
    a.Set(0, round);
    a.Reset();
  }
}

TEST(QueryStats, AccumulatesAllFields) {
  QueryStats a, b;
  a.visited_trajectories = 1;
  a.trajectory_hits = 2;
  a.settled_vertices = 3;
  a.heap_pops = 4;
  a.candidates = 5;
  a.posting_entries = 6;
  a.schedule_steps = 7;
  a.elapsed_ms = 1.5;
  b = a;
  b += a;
  EXPECT_EQ(b.visited_trajectories, 2);
  EXPECT_EQ(b.trajectory_hits, 4);
  EXPECT_EQ(b.settled_vertices, 6);
  EXPECT_EQ(b.heap_pops, 8);
  EXPECT_EQ(b.candidates, 10);
  EXPECT_EQ(b.posting_entries, 12);
  EXPECT_EQ(b.schedule_steps, 14);
  EXPECT_DOUBLE_EQ(b.elapsed_ms, 3.0);
  EXPECT_NE(b.ToString().find("visited=2"), std::string::npos);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([] { return 21 * 2; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL(); });
}

TEST(ThreadPool, ManySmallTasksDrain) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

}  // namespace
}  // namespace uots

// TrajectoryDatabase construction and index-wiring invariants.

#include "core/database.h"

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

TEST(Database, IndexesCoverTheStore) {
  GridNetworkOptions gopts;
  gopts.rows = 12;
  gopts.cols = 12;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 100;
  topts.vocabulary_size = 80;
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  const size_t total_samples = data->store.TotalSamples();

  TrajectoryDatabase db(std::move(*g), std::move(data->store),
                        std::move(data->vocabulary));
  EXPECT_EQ(db.store().size(), 100u);
  EXPECT_EQ(db.vocabulary().size(), 80u);
  EXPECT_EQ(db.time_index().size(), total_samples);
  EXPECT_EQ(db.vertex_index().TotalEntries() > 0, true);
  EXPECT_EQ(db.keyword_index().num_documents(), 100u);
  EXPECT_GT(db.MemoryUsage(), 0u);
}

TEST(Database, EmptyStoreIsUsable) {
  GridNetworkOptions gopts;
  gopts.rows = 4;
  gopts.cols = 4;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TrajectoryDatabase db(std::move(*g), TrajectoryStore());
  EXPECT_EQ(db.store().size(), 0u);
  EXPECT_EQ(db.time_index().size(), 0u);
  // Queries over an empty database return empty results, not errors.
  UotsQuery q;
  q.locations = {0};
  q.k = 3;
  for (auto kind : {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
                    AlgorithmKind::kUots, AlgorithmKind::kEuclidean}) {
    auto r = CreateAlgorithm(db, kind)->Search(q);
    ASSERT_TRUE(r.ok()) << ToString(kind);
    EXPECT_TRUE(r->items.empty()) << ToString(kind);
  }
}

TEST(Database, WeightedMeasureWiresDocumentFrequencies) {
  GridNetworkOptions gopts;
  gopts.rows = 10;
  gopts.cols = 10;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 60;
  topts.vocabulary_size = 50;
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  SimilarityOptions sopts;
  sopts.measure = TextualMeasure::kWeighted;
  TrajectoryDatabase db(std::move(*g), std::move(data->store),
                        std::move(data->vocabulary), sopts);
  // With idf wired, a rare shared term outweighs a common one; just check
  // that scoring is live and bounded.
  const double s = db.model().textual().Score(db.store().KeywordsOf(0),
                                              db.store().KeywordsOf(0));
  EXPECT_DOUBLE_EQ(s, 1.0);
  // The pipeline must remain exact: UOTS == BF under the weighted measure.
  UotsQuery q;
  q.locations = {5, 40};
  q.keywords = db.store().KeywordsOf(3);
  q.k = 5;
  auto rb = CreateAlgorithm(db, AlgorithmKind::kBruteForce)->Search(q);
  auto ru = CreateAlgorithm(db, AlgorithmKind::kUots)->Search(q);
  ASSERT_TRUE(rb.ok() && ru.ok());
  ASSERT_EQ(rb->items.size(), ru->items.size());
  for (size_t i = 0; i < rb->items.size(); ++i) {
    EXPECT_NEAR(rb->items[i].score, ru->items[i].score, 1e-9);
  }
}

TEST(Database, CustomSigmaChangesScores) {
  GridNetworkOptions gopts;
  gopts.rows = 10;
  gopts.cols = 10;
  auto g1 = MakeGridNetwork(gopts);
  auto g2 = MakeGridNetwork(gopts);
  ASSERT_TRUE(g1.ok() && g2.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 50;
  auto d1 = GenerateTrips(*g1, topts);
  auto d2 = GenerateTrips(*g2, topts);
  ASSERT_TRUE(d1.ok() && d2.ok());
  SimilarityOptions tight;
  tight.sigma_m = 200.0;
  TrajectoryDatabase db_default(std::move(*g1), std::move(d1->store));
  TrajectoryDatabase db_tight(std::move(*g2), std::move(d2->store), {}, tight);
  UotsQuery q;
  q.locations = {0};
  q.lambda = 1.0;
  q.k = 1;
  auto r1 = CreateAlgorithm(db_default, AlgorithmKind::kBruteForce)->Search(q);
  auto r2 = CreateAlgorithm(db_tight, AlgorithmKind::kBruteForce)->Search(q);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Tighter sigma decays faster: the best score cannot be larger.
  EXPECT_LE(r2->items[0].score, r1->items[0].score + 1e-12);
}

}  // namespace
}  // namespace uots

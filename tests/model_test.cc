// Similarity model, query validation, and the TopK accumulator.

#include "core/model.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "core/topk.h"

namespace uots {
namespace {

TEST(SimilarityModel, DecayIsOneAtZeroAndMonotone) {
  const SimilarityModel model;
  EXPECT_DOUBLE_EQ(model.SpatialDecay(0.0), 1.0);
  EXPECT_GT(model.SpatialDecay(100.0), model.SpatialDecay(200.0));
  EXPECT_NEAR(model.SpatialDecay(model.sigma_m()), std::exp(-1.0), 1e-12);
}

TEST(SimilarityModel, SigmaControlsScale) {
  SimilarityOptions tight, loose;
  tight.sigma_m = 100.0;
  loose.sigma_m = 10000.0;
  const SimilarityModel mt(tight), ml(loose);
  EXPECT_LT(mt.SpatialDecay(1000.0), ml.SpatialDecay(1000.0));
}

TEST(SimilarityModel, SpatialSimIsMeanOfDecays) {
  const SimilarityModel model;
  const double d[] = {0.0, model.sigma_m()};
  EXPECT_NEAR(model.SpatialSim(d), (1.0 + std::exp(-1.0)) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(model.SpatialSim({}), 0.0);
}

TEST(SimilarityModel, SpatialSimInUnitInterval) {
  const SimilarityModel model;
  const double d[] = {0.0, 1e9, 500.0};
  const double s = model.SpatialSim(d);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(SimilarityModel, CombineEndpoints) {
  EXPECT_DOUBLE_EQ(SimilarityModel::Combine(1.0, 0.8, 0.2), 0.8);
  EXPECT_DOUBLE_EQ(SimilarityModel::Combine(0.0, 0.8, 0.2), 0.2);
  EXPECT_DOUBLE_EQ(SimilarityModel::Combine(0.5, 0.8, 0.2), 0.5);
}

TEST(ValidateQuery, AcceptsReasonableQuery) {
  UotsQuery q;
  q.locations = {1, 2, 3};
  q.lambda = 0.5;
  q.k = 10;
  EXPECT_TRUE(ValidateQuery(q, 100).ok());
}

TEST(ValidateQuery, RejectsBadQueries) {
  UotsQuery q;
  EXPECT_FALSE(ValidateQuery(q, 100).ok());  // no locations
  q.locations = {5};
  q.lambda = 1.5;
  EXPECT_FALSE(ValidateQuery(q, 100).ok());  // lambda
  q.lambda = 0.5;
  q.k = 0;
  EXPECT_FALSE(ValidateQuery(q, 100).ok());  // k
  q.k = 1;
  q.locations = {200};
  EXPECT_FALSE(ValidateQuery(q, 100).ok());  // out of range
  q.locations.assign(65, 1);
  EXPECT_FALSE(ValidateQuery(q, 100).ok());  // too many
}

TEST(TopK, KeepsHighestScores) {
  TopK topk(3);
  EXPECT_FALSE(topk.Full());
  EXPECT_EQ(topk.Threshold(), -std::numeric_limits<double>::infinity());
  for (int i = 0; i < 10; ++i) {
    topk.Offer(ScoredTrajectory{static_cast<TrajId>(i), i * 0.1, 0, 0});
  }
  EXPECT_TRUE(topk.Full());
  EXPECT_NEAR(topk.Threshold(), 0.7, 1e-12);
  const auto items = std::move(topk).Finish();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].id, 9u);
  EXPECT_EQ(items[1].id, 8u);
  EXPECT_EQ(items[2].id, 7u);
}

TEST(TopK, TiesBrokenByAscendingId) {
  TopK topk(3);
  topk.Offer(ScoredTrajectory{5, 0.5, 0, 0});
  topk.Offer(ScoredTrajectory{1, 0.5, 0, 0});
  topk.Offer(ScoredTrajectory{9, 0.9, 0, 0});
  const auto items = std::move(topk).Finish();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].id, 9u);
  EXPECT_EQ(items[1].id, 1u);
  EXPECT_EQ(items[2].id, 5u);
}

TEST(TopK, FewerItemsThanK) {
  TopK topk(10);
  topk.Offer(ScoredTrajectory{1, 0.3, 0, 0});
  const auto items = std::move(topk).Finish();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].id, 1u);
}

}  // namespace
}  // namespace uots

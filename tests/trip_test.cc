// Trip-assembly engine tests (DESIGN.md §12).
//
// The invariants under test are the ones the subsystem advertises:
// assembled trips are *connected* (every connector distance equals an
// independently recomputed exact shortest-path distance, bit for bit, and
// is finite), cover every query location — in query order under the
// ordered-visit constraint, in the deterministic nearest-neighbor order
// otherwise — carry exact provenance into the trajectory store, match
// category descendants only when the query opts in, and are bitwise
// identical with and without the distance oracle. The cache key must
// separate every query knob, including location *order*.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cache/query_key.h"
#include "core/database.h"
#include "net/dijkstra.h"
#include "net/generators.h"
#include "oracle/ch_oracle.h"
#include "traj/generator.h"
#include "trip/category_tree.h"
#include "trip/planner.h"
#include "trip/workload.h"

namespace uots {
namespace {

constexpr int kVocab = 120;

std::unique_ptr<TrajectoryDatabase> MakeGridDb() {
  GridNetworkOptions gopts;
  gopts.rows = 15;
  gopts.cols = 15;
  gopts.seed = 91;
  auto net = MakeGridNetwork(gopts);
  EXPECT_TRUE(net.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 150;
  topts.vocabulary_size = kVocab;
  topts.seed = 22;
  auto gen = GenerateTrips(*net, topts);
  EXPECT_TRUE(gen.ok());
  return std::make_unique<TrajectoryDatabase>(
      std::move(*net), std::move(gen->store), std::move(gen->vocabulary));
}

std::vector<TripQuery> MakeQueries(const TrajectoryDatabase& db, int n) {
  TripWorkloadOptions wopts;
  wopts.num_queries = n;
  wopts.num_locations = 4;
  wopts.k = 3;
  wopts.seed = 33;
  auto queries = MakeTripWorkload(db, wopts);
  EXPECT_TRUE(queries.ok());
  return std::move(*queries);
}

/// A straight line of `n` vertices spaced `spacing_m` apart, so vertex id
/// doubles as a position and sd(a, b) = |a - b| * spacing_m exactly.
std::unique_ptr<TrajectoryDatabase> MakeLineDb(
    int n, double spacing_m, const std::vector<Trajectory>& trips,
    size_t vocab_size = 16) {
  GraphBuilder b;
  for (int i = 0; i < n; ++i) {
    b.AddVertex(Point{static_cast<double>(i) * spacing_m, 0.0});
  }
  for (int i = 0; i + 1 < n; ++i) {
    b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
              spacing_m);
  }
  auto net = std::move(b).Finalize();
  EXPECT_TRUE(net.ok());
  TrajectoryStore store;
  for (const auto& t : trips) {
    auto added = store.Add(t);
    EXPECT_TRUE(added.ok()) << added.status().ToString();
  }
  return std::make_unique<TrajectoryDatabase>(
      std::move(*net), std::move(store), Vocabulary::Synthetic(vocab_size));
}

/// One trajectory walking vertices [from, to] with one sample per vertex.
Trajectory WalkTrajectory(int from, int to, std::vector<TermId> keywords) {
  Trajectory t;
  const int step = from <= to ? 1 : -1;
  int32_t time = 60;
  for (int v = from;; v += step) {
    t.samples.push_back(Sample{static_cast<VertexId>(v), time});
    time += 30;
    if (v == to) break;
  }
  t.keywords = KeywordSet(std::move(keywords));
  return t;
}

TEST(TripTest, TripsAreConnectedWithExactProvenance) {
  auto db = MakeGridDb();
  TripPlanner planner(*db);
  const auto queries = MakeQueries(*db, 8);

  int trips_checked = 0;
  for (const auto& q : queries) {
    auto r = planner.Plan(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->trips.empty());
    EXPECT_LE(r->trips.size(), static_cast<size_t>(q.k));
    for (size_t ti = 0; ti < r->trips.size(); ++ti) {
      const AssembledTrip& trip = r->trips[ti];
      // Descending by score.
      if (ti > 0) {
        EXPECT_LE(trip.score, r->trips[ti - 1].score);
      }
      // One segment per query location, in visit order.
      ASSERT_EQ(trip.segments.size(), q.locations.size());
      double total = 0.0;
      for (size_t i = 0; i < trip.segments.size(); ++i) {
        const TripSegment& s = trip.segments[i];
        // Provenance: the sample window really is a slice of the source
        // trajectory, and entry/exit are its boundary vertices.
        const Trajectory src = db->store().Materialize(s.traj);
        ASSERT_LT(s.begin, s.end);
        ASSERT_LE(s.end, src.samples.size());
        EXPECT_EQ(s.entry, src.samples[s.begin].vertex);
        EXPECT_EQ(s.exit, src.samples[s.end - 1].vertex);
        // Connectivity: every connector is finite and *bitwise* equal to an
        // independently recomputed exact shortest-path distance.
        if (i == 0) {
          EXPECT_EQ(s.connector_m, 0.0);
        } else {
          ASSERT_TRUE(std::isfinite(s.connector_m));
          const double sd = ShortestPathDistance(
              db->network(), trip.segments[i - 1].exit, s.entry);
          EXPECT_EQ(s.connector_m, sd);
        }
        total += s.connector_m;
      }
      // connector_total_m is the in-order sum — same order, same bits.
      EXPECT_EQ(trip.connector_total_m, total);
      EXPECT_EQ(trip.score, SimilarityModel::Combine(q.lambda, trip.spatial_sim,
                                                     trip.textual_sim));
      ++trips_checked;
    }
  }
  EXPECT_GT(trips_checked, 8);
}

TEST(TripTest, OrderedVisitFollowsQueryOrder) {
  // One trajectory along the whole line: each location harvests exactly one
  // candidate, anchored at the location itself, so a segment's entry vertex
  // identifies which location it covers (|entry - loc| <= window).
  auto db = MakeLineDb(60, 100.0, {WalkTrajectory(0, 59, {1, 2})});

  TripQuery q;
  q.locations = {5, 50, 20};
  q.keywords = KeywordSet{1};
  q.window = 2;
  q.segments_per_location = 4;

  TripPlanner planner(*db);

  // Unordered: deterministic nearest-neighbor tour from locations[0] visits
  // 5 -> 20 -> 50.
  q.ordered = false;
  auto nn = planner.Plan(q);
  ASSERT_TRUE(nn.ok()) << nn.status().ToString();
  ASSERT_EQ(nn->trips.size(), 1u);
  ASSERT_EQ(nn->trips[0].segments.size(), 3u);
  EXPECT_LE(std::abs(static_cast<int>(nn->trips[0].segments[0].entry) - 5), 2);
  EXPECT_LE(std::abs(static_cast<int>(nn->trips[0].segments[1].entry) - 20), 2);
  EXPECT_LE(std::abs(static_cast<int>(nn->trips[0].segments[2].entry) - 50), 2);

  // Ordered: the query order 5 -> 50 -> 20 is kept even though it backtracks.
  q.ordered = true;
  auto ordered = planner.Plan(q);
  ASSERT_TRUE(ordered.ok()) << ordered.status().ToString();
  ASSERT_EQ(ordered->trips.size(), 1u);
  ASSERT_EQ(ordered->trips[0].segments.size(), 3u);
  EXPECT_LE(std::abs(static_cast<int>(ordered->trips[0].segments[0].entry) - 5),
            2);
  EXPECT_LE(
      std::abs(static_cast<int>(ordered->trips[0].segments[1].entry) - 50), 2);
  EXPECT_LE(
      std::abs(static_cast<int>(ordered->trips[0].segments[2].entry) - 20), 2);
  // The backtracking tour pays for it in connector distance.
  EXPECT_GT(ordered->trips[0].connector_total_m,
            nn->trips[0].connector_total_m);
}

TEST(TripTest, GapBudgetRejectsInfeasibleStitches) {
  // Two disjoint trajectories ~3km apart on the line; with one candidate
  // per location each query location snaps to its nearest trajectory, and
  // the connector between the two segments exceeds a 1km budget — assembly
  // must yield nothing rather than a disconnected "trip".
  auto db = MakeLineDb(60, 100.0, {WalkTrajectory(0, 10, {1}),
                                   WalkTrajectory(45, 59, {2})});
  TripQuery q;
  q.locations = {5, 50};
  q.keywords = KeywordSet{1};
  q.ordered = true;
  q.window = 2;
  q.segments_per_location = 1;

  TripPlanner planner(*db);
  q.gap_budget_m = 1000.0;
  auto tight = planner.Plan(q);
  ASSERT_TRUE(tight.ok());
  EXPECT_TRUE(tight->trips.empty());

  q.gap_budget_m = 0.0;  // unlimited
  auto open = planner.Plan(q);
  ASSERT_TRUE(open.ok());
  ASSERT_EQ(open->trips.size(), 1u);
  EXPECT_GT(open->trips[0].connector_total_m, 1000.0);

  q.gap_budget_m = 10000.0;  // generous budget admits the same stitch
  auto wide = planner.Plan(q);
  ASSERT_TRUE(wide.ok());
  ASSERT_EQ(wide->trips.size(), 1u);
  EXPECT_EQ(wide->trips[0], open->trips[0]);
}

TEST(TripTest, CategoryMatchingIsOptIn) {
  // The synthetic tree is parent(i) = (i-1)/8: term 9 is a child of term 1.
  // A query for the parent category matches a trajectory tagged with the
  // child only when the query opts into category expansion.
  auto db = MakeLineDb(30, 100.0, {WalkTrajectory(0, 29, {9})},
                       /*vocab_size=*/80);
  TripQuery q;
  q.locations = {15};
  q.keywords = KeywordSet{1};
  q.window = 2;

  TripPlanner planner(*db);
  q.use_categories = false;
  auto flat = planner.Plan(q);
  ASSERT_TRUE(flat.ok());
  ASSERT_EQ(flat->trips.size(), 1u);
  EXPECT_EQ(flat->trips[0].textual_sim, 0.0);

  q.use_categories = true;
  auto expanded = planner.Plan(q);
  ASSERT_TRUE(expanded.ok());
  ASSERT_EQ(expanded->trips.size(), 1u);
  EXPECT_GT(expanded->trips[0].textual_sim, 0.0);
  EXPECT_GT(expanded->trips[0].score, flat->trips[0].score);
}

TEST(TripTest, SyntheticCategoryTreeExpandsToDescendantClosure) {
  const Vocabulary vocab = Vocabulary::Synthetic(80);
  const CategoryTree tree = CategoryTree::Synthetic(vocab);
  ASSERT_EQ(tree.size(), 80u);
  EXPECT_EQ(tree.ParentOf(0), kInvalidTerm);  // root
  EXPECT_EQ(tree.ParentOf(9), 1u);
  EXPECT_EQ(tree.ParentOf(73), 9u);

  // Descendants of 1: children 9..16, grandchildren 73..79 (80-term cap).
  const KeywordSet expanded = tree.ExpandQuery(KeywordSet{1});
  EXPECT_EQ(expanded.size(), 16u);
  EXPECT_TRUE(expanded.Contains(1));
  for (TermId t = 9; t <= 16; ++t) EXPECT_TRUE(expanded.Contains(t));
  for (TermId t = 73; t <= 79; ++t) EXPECT_TRUE(expanded.Contains(t));
  EXPECT_FALSE(expanded.Contains(0));
  EXPECT_FALSE(expanded.Contains(2));
  EXPECT_FALSE(expanded.Contains(17));
}

TEST(TripTest, CategoryTreeParseAcceptsAndRejects) {
  Vocabulary vocab;
  const TermId root = vocab.Intern("root");
  const TermId a = vocab.Intern("a");
  const TermId b = vocab.Intern("b");
  vocab.Intern("c");

  auto ok = CategoryTree::Parse(
      "# taxonomy\n"
      "a root\n"
      "\n"
      "b a\n"
      "c b\n",
      vocab);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->ParentOf(a), root);
  EXPECT_EQ(ok->ParentOf(b), a);
  EXPECT_EQ(ok->ParentOf(root), kInvalidTerm);
  const KeywordSet closure = ok->ExpandQuery(KeywordSet{a});
  EXPECT_EQ(closure.size(), 3u);  // a, b, c

  // Unknown term.
  EXPECT_FALSE(CategoryTree::Parse("zzz root\n", vocab).ok());
  // Reassigned parent.
  EXPECT_FALSE(CategoryTree::Parse("a root\na b\n", vocab).ok());
  // Cycle.
  EXPECT_FALSE(CategoryTree::Parse("a b\nb a\n", vocab).ok());
}

TEST(TripTest, OracleOnOffIsBitIdentical) {
  auto db = MakeGridDb();
  auto oracle = DistanceOracle::Build(db->network());
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  db->AttachOracle(
      std::make_shared<const DistanceOracle>(std::move(*oracle)));
  ASSERT_NE(db->oracle(), nullptr);

  TripPlannerOptions with;
  with.use_oracle = true;
  TripPlannerOptions without;
  without.use_oracle = false;
  TripPlanner oracle_planner(*db, with);
  TripPlanner dijkstra_planner(*db, without);

  const auto queries = MakeQueries(*db, 10);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto a = oracle_planner.Plan(queries[i]);
    auto b = dijkstra_planner.Plan(queries[i]);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    // AssembledTrip::operator== compares every double exactly: scores,
    // similarities, and connector distances must agree to the last bit.
    EXPECT_TRUE(a->trips == b->trips) << "query " << i;
    // The oracle-backed run actually consulted it.
    EXPECT_GT(a->stats.oracle_lookups + b->stats.oracle_lookups, 0)
        << "query " << i;
  }
}

TEST(TripTest, CacheKeySeparatesEveryQueryKnob) {
  TripQuery base;
  base.locations = {7, 3, 11};
  base.keywords = KeywordSet{4, 9};
  constexpr uint64_t kFp = 0x5eedf00dULL;
  const std::string key = EncodeTripCacheKey(base, kFp);

  // Same query, same bits.
  EXPECT_EQ(EncodeTripCacheKey(base, kFp), key);

  std::vector<TripQuery> variants;
  {
    TripQuery v = base;
    v.ordered = true;
    variants.push_back(v);
  }
  {
    TripQuery v = base;
    v.use_categories = true;
    variants.push_back(v);
  }
  {
    TripQuery v = base;
    v.gap_budget_m = 500.0;
    variants.push_back(v);
  }
  {
    TripQuery v = base;
    v.lambda = 0.25;
    variants.push_back(v);
  }
  {
    TripQuery v = base;
    v.k = 2;
    variants.push_back(v);
  }
  {
    TripQuery v = base;
    v.segments_per_location = 16;
    variants.push_back(v);
  }
  {
    TripQuery v = base;
    v.window = 8;
    variants.push_back(v);
  }
  {
    // Location *order* is part of the key: the nearest-neighbor tour starts
    // at locations[0], so permutations are distinct queries.
    TripQuery v = base;
    v.locations = {3, 7, 11};
    variants.push_back(v);
  }
  {
    TripQuery v = base;
    v.keywords = KeywordSet{4, 10};
    variants.push_back(v);
  }
  for (size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(EncodeTripCacheKey(variants[i], kFp), key) << "variant " << i;
    for (size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(EncodeTripCacheKey(variants[i], kFp),
                EncodeTripCacheKey(variants[j], kFp))
          << "variants " << i << " vs " << j;
    }
  }
  // A live ingest bumps the fingerprint salt and with it every key.
  EXPECT_NE(EncodeTripCacheKey(base, kFp + 1), key);
}

TEST(TripTest, ValidateRejectsMalformedQueries) {
  TripQuery q;
  q.locations = {1, 2};
  q.keywords = KeywordSet{0};
  EXPECT_TRUE(ValidateTripQuery(q, 100).ok());

  TripQuery bad = q;
  bad.locations.clear();
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
  bad = q;
  bad.locations.assign(kMaxTripLocations + 1, 1);
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
  bad = q;
  bad.locations = {1, 100};
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
  bad = q;
  bad.lambda = 1.5;
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
  bad = q;
  bad.k = 0;
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
  bad = q;
  bad.segments_per_location = 0;
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
  bad = q;
  bad.window = -1;
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
  bad = q;
  bad.gap_budget_m = -1.0;
  EXPECT_FALSE(ValidateTripQuery(bad, 100).ok());
}

}  // namespace
}  // namespace uots

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace uots {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(9);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.Uniform(8)];
  for (int r = 0; r < 8; ++r) {
    // Expected 1000 each; very loose 5-sigma-ish band.
    EXPECT_GT(hits[r], 800) << "residue " << r;
    EXPECT_LT(hits[r], 1200) << "residue " << r;
  }
}

TEST(Rng, UniformIntIsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(31), parent2(31);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.Next(), child2.Next());
  // Child differs from a fresh continuation of the parent.
  EXPECT_NE(child1.Next(), parent1.Next());
}

TEST(SplitMix64, KnownSequenceAdvancesState) {
  uint64_t s = 0;
  const uint64_t a = SplitMix64(s);
  const uint64_t b = SplitMix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace uots

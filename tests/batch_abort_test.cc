// Batch abort semantics: a failing query cancels sibling shards, a batch
// deadline stops every shard, and partial work (counts, stats, latencies)
// is reported either way instead of being dropped.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batch.h"
#include "core/workload.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

const TrajectoryDatabase& TestDb() {
  static auto* db = [] {
    GridNetworkOptions gopts;
    gopts.rows = 20;
    gopts.cols = 20;
    gopts.seed = 31;
    auto g = MakeGridNetwork(gopts);
    TripGeneratorOptions topts;
    topts.num_trajectories = 400;
    topts.vocabulary_size = 150;
    topts.seed = 32;
    auto data = GenerateTrips(*g, topts);
    return new TrajectoryDatabase(std::move(*g), std::move(data->store),
                                  std::move(data->vocabulary));
  }();
  return *db;
}

// Heavy enough that a shard takes tens of milliseconds — the failing shard
// dies in microseconds, so siblings reliably observe the cancel mid-range.
std::vector<UotsQuery> HeavyWorkload(int n) {
  WorkloadOptions wopts;
  wopts.num_queries = n;
  wopts.num_locations = 4;
  wopts.k = 10;
  auto q = MakeWorkload(TestDb(), wopts);
  EXPECT_TRUE(q.ok());
  return *q;
}

size_t SumShardCompleted(const BatchResult& r) {
  size_t sum = 0;
  for (const ShardStats& s : r.shards) sum += s.completed;
  return sum;
}

TEST(BatchAbort, FailingQueryCancelsSiblingShards) {
  std::vector<UotsQuery> queries = HeavyWorkload(360);
  // Invalidate shard 0's first query (vertex id out of range) so shard 0
  // fails immediately while shard 1 is still deep inside its range.
  queries[0].locations[0] =
      static_cast<VertexId>(TestDb().network().NumVertices() + 7);

  BatchOptions opts;
  opts.threads = 2;
  const BatchResult r = RunBatchDetailed(TestDb(), queries, opts);

  ASSERT_EQ(r.shards.size(), 2u);
  const ShardStats& s0 = r.shards[0];
  const ShardStats& s1 = r.shards[1];

  // The failing shard reports the query's own error, tagged with the
  // workload index, and completed nothing before it.
  EXPECT_EQ(s0.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s0.status.message().find("query 0:"), std::string::npos)
      << s0.status.ToString();
  EXPECT_EQ(s0.completed, 0u);

  // THE regression assertion: without the shared-token broadcast, shard 1
  // never hears about the failure and runs its whole range to completion.
  EXPECT_LT(s1.completed, s1.end - s1.begin)
      << "sibling shard was not aborted";
  EXPECT_EQ(s1.status.code(), StatusCode::kCancelled)
      << s1.status.ToString();

  // The overall status is the real error, never the sibling's kCancelled.
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status.message().find("query 0:"), std::string::npos);

  // Partial work is reported, not dropped: completed counts line up and
  // every completed query contributed one latency sample.
  EXPECT_EQ(r.completed, SumShardCompleted(r));
  EXPECT_EQ(r.latency.count(), static_cast<int64_t>(r.completed));

  // Answers exist exactly for the queries that ran (shards execute their
  // range in order from `begin`).
  ASSERT_EQ(r.answers.size(), queries.size());
  for (size_t i = s1.begin + s1.completed; i < s1.end; ++i) {
    EXPECT_TRUE(r.answers[i].empty()) << "query " << i << " never executed";
  }
}

TEST(BatchAbort, SiblingShardStatsAreMergedOnFailure) {
  std::vector<UotsQuery> queries = HeavyWorkload(360);
  // Fail mid-range: shard 0 completes queries [0, 90) before hitting the
  // bad one, so partial work deterministically exists.
  queries[90].locations.clear();  // invalid: no locations
  BatchOptions opts;
  opts.threads = 2;
  const BatchResult r = RunBatchDetailed(TestDb(), queries, opts);
  ASSERT_FALSE(r.status.ok());

  // Per-shard counters for completed queries sum to the batch total even
  // though the batch failed.
  QueryStats summed;
  for (const ShardStats& s : r.shards) summed += s.stats;
  EXPECT_EQ(summed.visited_trajectories, r.total.visited_trajectories);
  EXPECT_EQ(summed.settled_vertices, r.total.settled_vertices);
  EXPECT_EQ(summed.TotalPhaseNs(), r.total.TotalPhaseNs());
  // Some sibling-shard work completed and was kept.
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.total.TotalPhaseNs(), 0);
}

TEST(BatchAbort, DeadlineExpiryReportsPartialCompletion) {
  std::vector<UotsQuery> queries = HeavyWorkload(600);
  BatchOptions opts;
  opts.threads = 2;
  opts.deadline_ms = 2.0;  // far less than ~600 heavy queries need
  const BatchResult r = RunBatchDetailed(TestDb(), queries, opts);

  ASSERT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
      << r.status.ToString();
  // The message reports progress ("N of M queries").
  EXPECT_NE(r.status.message().find(" of "), std::string::npos)
      << r.status.ToString();
  EXPECT_LT(r.completed, queries.size());
  EXPECT_EQ(r.completed, SumShardCompleted(r));
  EXPECT_EQ(r.latency.count(), static_cast<int64_t>(r.completed));

  // Deadline expiry is attributed as kDeadlineExceeded on the shards that
  // stopped early — never as kCancelled (nobody failed).
  bool saw_deadline = false;
  for (const ShardStats& s : r.shards) {
    EXPECT_NE(s.status.code(), StatusCode::kCancelled) << s.status.ToString();
    if (s.status.code() == StatusCode::kDeadlineExceeded) saw_deadline = true;
  }
  EXPECT_TRUE(saw_deadline);
}

TEST(BatchAbort, OkRunReportsFullCompletion) {
  std::vector<UotsQuery> queries = HeavyWorkload(24);
  BatchOptions opts;
  opts.threads = 3;
  const BatchResult r = RunBatchDetailed(TestDb(), queries, opts);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.completed, queries.size());
  EXPECT_EQ(r.latency.count(), static_cast<int64_t>(queries.size()));
  for (const ShardStats& s : r.shards) {
    EXPECT_TRUE(s.status.ok()) << s.status.ToString();
    EXPECT_EQ(s.completed, s.end - s.begin);
  }
}

TEST(BatchAbort, RunBatchWrapperSurfacesDetailedStatus) {
  std::vector<UotsQuery> queries = HeavyWorkload(8);
  queries[3].locations.clear();
  BatchOptions opts;
  opts.threads = 2;
  auto r = RunBatch(TestDb(), queries, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("query 3:"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace uots

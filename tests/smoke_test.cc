// End-to-end smoke test: build a small dataset, run every algorithm, and
// check the exact ones agree with brute force.

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/workload.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

TEST(Smoke, EndToEnd) {
  GridNetworkOptions gopts;
  gopts.rows = 30;
  gopts.cols = 30;
  auto net = MakeGridNetwork(gopts);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  TripGeneratorOptions topts;
  topts.num_trajectories = 300;
  topts.vocabulary_size = 100;
  auto data = GenerateTrips(*net, topts);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->store.size(), 300u);

  TrajectoryDatabase db(std::move(*net), std::move(data->store),
                        std::move(data->vocabulary));

  WorkloadOptions wopts;
  wopts.num_queries = 5;
  wopts.k = 5;
  auto queries = MakeWorkload(db, wopts);
  ASSERT_TRUE(queries.ok());

  auto bf = CreateAlgorithm(db, AlgorithmKind::kBruteForce);
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  auto tf = CreateAlgorithm(db, AlgorithmKind::kTextFirst);
  for (const UotsQuery& q : *queries) {
    auto rb = bf->Search(q);
    auto ru = uots->Search(q);
    auto rt = tf->Search(q);
    ASSERT_TRUE(rb.ok());
    ASSERT_TRUE(ru.ok());
    ASSERT_TRUE(rt.ok());
    ASSERT_EQ(rb->items.size(), ru->items.size());
    for (size_t i = 0; i < rb->items.size(); ++i) {
      EXPECT_NEAR(rb->items[i].score, ru->items[i].score, 1e-9);
      EXPECT_NEAR(rb->items[i].score, rt->items[i].score, 1e-6);
    }
  }
}

}  // namespace
}  // namespace uots

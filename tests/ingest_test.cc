// Live-ingest tests (DESIGN.md §11): the delta layer must be
// indistinguishable — bit for bit — from tearing the index down and
// rebuilding it with the new trips in the base, across every engine;
// batches must be atomic with contiguous id assignment; stale cache
// generations must be unreachable and reclaimable; queries must stay
// valid while batches land concurrently; and a compaction must round-trip
// through the on-disk snapshot validator and swap in live.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/workload.h"
#include "ingest/ingestor.h"
#include "net/generators.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "storage/resolver.h"
#include "traj/generator.h"

namespace uots {
namespace {

RoadNetwork MakeNet() {
  GridNetworkOptions opts;
  opts.rows = 15;
  opts.cols = 15;
  opts.seed = 91;
  auto net = MakeGridNetwork(opts);
  EXPECT_TRUE(net.ok());
  return std::move(*net);
}

constexpr int kVocab = 120;

/// Deterministic row-form trips over `net`, terms in [0, kVocab).
std::vector<Trajectory> MakeTrips(const RoadNetwork& net, int n,
                                  uint64_t seed) {
  TripGeneratorOptions opts;
  opts.num_trajectories = n;
  opts.vocabulary_size = kVocab;
  opts.seed = seed;
  auto gen = GenerateTrips(net, opts);
  EXPECT_TRUE(gen.ok());
  std::vector<Trajectory> rows;
  rows.reserve(gen->store.size());
  for (size_t i = 0; i < gen->store.size(); ++i) {
    rows.push_back(gen->store.Materialize(static_cast<TrajId>(i)));
  }
  return rows;
}

std::unique_ptr<TrajectoryDatabase> MakeBaseDb(
    const RoadNetwork& net, const SimilarityOptions& sim = {}) {
  TripGeneratorOptions opts;
  opts.num_trajectories = 120;
  opts.vocabulary_size = kVocab;
  opts.seed = 22;
  auto gen = GenerateTrips(net, opts);
  EXPECT_TRUE(gen.ok());
  return std::make_unique<TrajectoryDatabase>(
      net, std::move(gen->store), std::move(gen->vocabulary), sim);
}

/// Cold rebuild: a fresh database whose base contains every row of `db`
/// plus `extra`, indexed from scratch. This is the ground truth the delta
/// overlay must match exactly.
std::unique_ptr<TrajectoryDatabase> Rebuild(
    const TrajectoryDatabase& db, const std::vector<Trajectory>& extra) {
  TrajectoryStore merged;
  for (size_t i = 0; i < db.store().size(); ++i) {
    auto added = merged.Add(db.store().Materialize(static_cast<TrajId>(i)));
    EXPECT_TRUE(added.ok());
  }
  for (const auto& t : extra) {
    auto added = merged.Add(t);
    EXPECT_TRUE(added.ok());
  }
  SimilarityOptions sim;
  sim.sigma_m = db.model().sigma_m();
  sim.sigma_s = db.model().sigma_s();
  sim.measure = db.model().textual().measure();
  return std::make_unique<TrajectoryDatabase>(db.network(), std::move(merged),
                                              db.vocabulary(), sim);
}

std::vector<UotsQuery> MakeQueries(const TrajectoryDatabase& db, int n) {
  WorkloadOptions wopts;
  wopts.num_queries = n;
  wopts.num_locations = 4;
  wopts.k = 6;
  wopts.seed = 33;
  auto queries = MakeWorkload(db, wopts);
  EXPECT_TRUE(queries.ok());
  return std::move(*queries);
}

void ExpectIdentical(const SearchResult& a, const SearchResult& b,
                     const char* what, size_t qi) {
  ASSERT_EQ(a.items.size(), b.items.size()) << what << " query " << qi;
  for (size_t j = 0; j < a.items.size(); ++j) {
    EXPECT_EQ(a.items[j].id, b.items[j].id) << what << " query " << qi;
    // Bitwise double equality, deliberately: "ingest then query" and
    // "rebuild then query" must be the same computation.
    EXPECT_EQ(a.items[j].score, b.items[j].score) << what << " query " << qi;
    EXPECT_EQ(a.items[j].spatial_sim, b.items[j].spatial_sim)
        << what << " query " << qi;
    EXPECT_EQ(a.items[j].textual_sim, b.items[j].textual_sim)
        << what << " query " << qi;
  }
}

TEST(IngestTest, DeltaMatchesColdRebuildAcrossAllSixEngines) {
  const RoadNetwork net = MakeNet();
  auto base = MakeBaseDb(net);
  const std::vector<Trajectory> extra = MakeTrips(net, 40, 77);

  Ingestor ingestor(base.get());
  auto applied = ingestor.Apply(extra);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->first_id, static_cast<TrajId>(120));
  EXPECT_EQ(applied->accepted, extra.size());

  auto rebuilt = Rebuild(*base, extra);
  // The workload is drawn over the rebuilt database so ingested trips are
  // eligible for (and do appear in) top-k answers.
  const auto queries = MakeQueries(*rebuilt, 10);

  for (AlgorithmKind kind :
       {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
        AlgorithmKind::kUots, AlgorithmKind::kUotsNoHeuristic,
        AlgorithmKind::kUotsSequential, AlgorithmKind::kEuclidean}) {
    QueryOptions opts;
    opts.algorithm = kind;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto via_delta = RunQuery(*base, queries[i], opts);
      auto via_rebuild = RunQuery(*rebuilt, queries[i], opts);
      ASSERT_TRUE(via_delta.ok()) << via_delta.status().ToString();
      ASSERT_TRUE(via_rebuild.ok()) << via_rebuild.status().ToString();
      ExpectIdentical(*via_delta, *via_rebuild, ToString(kind), i);
    }
  }
}

TEST(IngestTest, AssignsContiguousIdsAboveBaseAcrossBatches) {
  const RoadNetwork net = MakeNet();
  auto base = MakeBaseDb(net);
  const std::vector<Trajectory> extra = MakeTrips(net, 10, 55);

  Ingestor ingestor(base.get());
  EXPECT_EQ(ingestor.generation(), 0u);
  EXPECT_EQ(ingestor.delta_trajectories(), 0u);
  EXPECT_EQ(ingestor.delta_bytes(), 0u);

  auto first = ingestor.Apply({extra.begin(), extra.begin() + 6});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->first_id, static_cast<TrajId>(120));
  EXPECT_EQ(first->accepted, 6u);
  EXPECT_EQ(first->generation, 1u);

  auto second = ingestor.Apply({extra.begin() + 6, extra.end()});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->first_id, static_cast<TrajId>(126));
  EXPECT_EQ(second->accepted, 4u);
  EXPECT_EQ(second->generation, 2u);

  EXPECT_EQ(ingestor.delta_trajectories(), 10u);
  EXPECT_GT(ingestor.delta_bytes(), 0u);
  EXPECT_EQ(ingestor.accepted_total(), 10);
  EXPECT_EQ(base->delta_generation(), 2u);
}

TEST(IngestTest, RejectsInvalidBatchesAtomically) {
  const RoadNetwork net = MakeNet();
  auto base = MakeBaseDb(net);
  const std::vector<Trajectory> good = MakeTrips(net, 4, 55);
  Ingestor ingestor(base.get());

  const auto expect_rejected = [&](std::vector<Trajectory> batch) {
    auto r = ingestor.Apply(std::move(batch));
    EXPECT_FALSE(r.ok());
    // Atomic: a refused batch leaves no trace in the delta.
    EXPECT_EQ(ingestor.delta_trajectories(), 0u);
    EXPECT_EQ(ingestor.generation(), 0u);
  };

  // No samples.
  expect_rejected({Trajectory{}});
  // Timestamp out of the day range.
  {
    Trajectory t = good[0];
    t.samples[0].time_s = -5;
    expect_rejected({t});
  }
  // Timestamps not monotone.
  {
    Trajectory t = good[0];
    ASSERT_GE(t.samples.size(), 2u);
    std::swap(t.samples.front().time_s, t.samples.back().time_s);
    t.samples.front().time_s = kSecondsPerDay - 1;
    expect_rejected({t});
  }
  // Vertex outside the network.
  {
    Trajectory t = good[0];
    t.samples[0].vertex = static_cast<VertexId>(net.NumVertices());
    expect_rejected({t});
  }
  // Term outside the vocabulary.
  {
    Trajectory t = good[0];
    t.keywords = KeywordSet{static_cast<TermId>(kVocab)};
    expect_rejected({t});
  }
  // Duplicate content within one batch.
  expect_rejected({good[0], good[0]});
  // One bad trip poisons the whole batch — the good ones are NOT ingested.
  {
    Trajectory bad = good[1];
    bad.samples.clear();
    expect_rejected({good[0], bad});
  }

  // The same good trips are still ingestible afterwards...
  auto ok = ingestor.Apply(good);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->accepted, 4u);
  // ...and a resubmission (client retry after a lost response) is refused.
  auto dup = ingestor.Apply({good[2]});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(ingestor.delta_trajectories(), 4u);
  // Rejections tally trips, not batches: five 1-trip batches, two 2-trip
  // batches, and the final 1-trip resubmission.
  EXPECT_EQ(ingestor.rejected_total(), 10);
}

TEST(IngestTest, RejectsWeightedTextualModel) {
  const RoadNetwork net = MakeNet();
  SimilarityOptions sim;
  sim.measure = TextualMeasure::kWeighted;
  auto base = MakeBaseDb(net, sim);
  Ingestor ingestor(base.get());
  // idf weights depend on global document frequencies, so a delta overlay
  // cannot be bit-identical to a rebuild — ingest must refuse outright.
  auto r = ingestor.Apply(MakeTrips(net, 2, 55));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(ingestor.delta_trajectories(), 0u);
}

TEST(IngestTest, StaleCacheGenerationIsUnreachableAndReclaimable) {
  const RoadNetwork net = MakeNet();
  auto base = MakeBaseDb(net);
  ServiceOptions sopts;
  sopts.threads = 2;
  sopts.cache_max_entries = 64;
  UotsService service(*base, sopts);
  const auto queries = MakeQueries(*base, 1);

  // Miss, compute, populate.
  std::string key;
  EXPECT_EQ(service.CacheLookup(queries[0], AlgorithmKind::kUots, &key),
            nullptr);
  ASSERT_FALSE(key.empty());
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  ASSERT_TRUE(service.TryExecute(queries[0], AlgorithmKind::kUots, nullptr,
                                 [&](ExecutionResult r) {
                                   EXPECT_TRUE(r.status.ok());
                                   std::lock_guard<std::mutex> lock(mu);
                                   finished = true;
                                   cv.notify_one();
                                 },
                                 key));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return finished; });
  }
  std::string key2;
  EXPECT_NE(service.CacheLookup(queries[0], AlgorithmKind::kUots, &key2),
            nullptr);

  // Ingest bumps the live fingerprint: the identical query now derives a
  // different key, so the pre-ingest entry can never be served again.
  Ingestor ingestor(base.get());
  auto applied = ingestor.Apply(MakeTrips(net, 5, 77));
  ASSERT_TRUE(applied.ok());
  std::string key3;
  EXPECT_EQ(service.CacheLookup(queries[0], AlgorithmKind::kUots, &key3),
            nullptr);
  EXPECT_NE(key3, key);

  // The stale entry still holds memory until the explicit reclaim the
  // server issues on every ingest apply.
  ResultCache* cache = service.result_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->stats().entries, 1);
  cache->InvalidateGeneration();
  const ResultCache::Stats after = cache->stats();
  EXPECT_EQ(after.entries, 0);
  EXPECT_EQ(after.bytes, 0);
  EXPECT_EQ(after.invalidations, 1);
  EXPECT_GE(after.invalidated_entries, 1);
}

TEST(IngestTest, QueriesStayValidDuringSustainedIngest) {
  const RoadNetwork net = MakeNet();
  auto base = MakeBaseDb(net);
  const auto queries = MakeQueries(*base, 6);
  // One pool of distinct trips, split into batches (distinct content so
  // the duplicate filter never fires mid-hammer).
  const std::vector<Trajectory> pool = MakeTrips(net, 64, 901);

  Ingestor ingestor(base.get());
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<int64_t> executed{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      QueryOptions opts;
      opts.algorithm =
          t == 0 ? AlgorithmKind::kUots
                 : (t == 1 ? AlgorithmKind::kBruteForce
                           : AlgorithmKind::kTextFirst);
      size_t i = 0;
      while (!done.load(std::memory_order_relaxed)) {
        auto r = RunQuery(*base, queries[i++ % queries.size()], opts);
        if (!r.ok()) {
          ++failures;
          break;
        }
        ++executed;
      }
    });
  }

  // The single writer, as on the server's reactor thread.
  for (size_t off = 0; off < pool.size(); off += 4) {
    auto r = ingestor.Apply(
        {pool.begin() + static_cast<ptrdiff_t>(off),
         pool.begin() + static_cast<ptrdiff_t>(off + 4)});
    if (!r.ok()) ++failures;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(executed.load(), 0);
  EXPECT_EQ(ingestor.delta_trajectories(), pool.size());

  // Settled state is still exactly the cold rebuild.
  auto rebuilt = Rebuild(*base, pool);
  QueryOptions opts;
  opts.algorithm = AlgorithmKind::kUots;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto a = RunQuery(*base, queries[i], opts);
    auto b = RunQuery(*rebuilt, queries[i], opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectIdentical(*a, *b, "post-hammer", i);
  }
}

TEST(IngestTest, CompactionRoundTripsThroughValidatedSnapshot) {
  const RoadNetwork net = MakeNet();
  TripGeneratorOptions gopts;
  gopts.num_trajectories = 120;
  gopts.vocabulary_size = kVocab;
  gopts.seed = 22;
  auto gen = GenerateTrips(net, gopts);
  ASSERT_TRUE(gen.ok());
  auto owned = std::make_shared<TrajectoryDatabase>(
      net, std::move(gen->store), std::move(gen->vocabulary));
  const std::vector<Trajectory> extra = MakeTrips(net, 30, 77);

  const std::string snap_path =
      ::testing::TempDir() + "/uots_ingest_compact.snap";
  ServerOptions opts;
  opts.port = 0;
  opts.admin.port = 0;  // ephemeral admin plane for POST /compact
  opts.compact_snapshot_path = snap_path;
  UotsServer server(std::shared_ptr<const TrajectoryDatabase>(owned), opts);
  ASSERT_TRUE(server.Start().ok());
  std::thread loop([&] { server.Run(); });

  BlockingClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  IngestRequest ireq;
  ireq.id = 1;
  ireq.trajectories = extra;
  auto iresp = client.Call(ireq);
  ASSERT_TRUE(iresp.ok()) << iresp.status().ToString();
  ASSERT_TRUE(iresp->ok()) << iresp->error;
  EXPECT_EQ(iresp->first_traj, 120);
  EXPECT_EQ(iresp->accepted, 30);

  // Remember pre-compaction answers (served through the delta overlay).
  auto rebuilt = Rebuild(*owned, extra);
  const auto queries = MakeQueries(*rebuilt, 6);
  std::vector<QueryResponse> before;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryRequest req;
    req.id = static_cast<int64_t>(i);
    req.query = queries[i];
    auto resp = client.Call(req);
    ASSERT_TRUE(resp.ok() && resp->ok());
    before.push_back(std::move(*resp));
  }

  auto post = HttpFetch("127.0.0.1", server.admin_port(), "/compact", "POST");
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post->status, 202);

  // Wait for the background fold + live swap (statusz is loop-published,
  // so it is the race-free way to observe completion from this thread).
  bool compacted = false;
  for (int i = 0; i < 200 && !compacted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto statusz =
        HttpFetch("127.0.0.1", server.admin_port(), "/statusz", "GET");
    ASSERT_TRUE(statusz.ok());
    compacted =
        statusz->body.find("\"compacting\":false") != std::string::npos &&
        statusz->body.find("\"compactions\":1") != std::string::npos;
  }
  ASSERT_TRUE(compacted) << "compaction did not finish in 10s";

  // The written snapshot passes full validation (checksums on) and holds
  // exactly base + delta.
  auto loaded = storage::LoadDatabaseFromPath(snap_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->db->store().size(), 150u);

  // The swapped-in server answers every query identically to before the
  // compaction AND to the validated on-disk reload.
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryRequest req;
    req.id = 100 + static_cast<int64_t>(i);
    req.query = queries[i];
    auto resp = client.Call(req);
    ASSERT_TRUE(resp.ok() && resp->ok());
    ASSERT_EQ(resp->results.size(), before[i].results.size());
    for (size_t j = 0; j < resp->results.size(); ++j) {
      EXPECT_EQ(resp->results[j].id, before[i].results[j].id);
      EXPECT_EQ(resp->results[j].score, before[i].results[j].score);
    }
    QueryOptions lopts;
    auto local = RunQuery(*loaded->db, queries[i], lopts);
    ASSERT_TRUE(local.ok());
    ASSERT_EQ(resp->results.size(), local->items.size());
    for (size_t j = 0; j < local->items.size(); ++j) {
      EXPECT_EQ(resp->results[j].id, local->items[j].id);
      EXPECT_EQ(resp->results[j].score, local->items[j].score);
      EXPECT_EQ(resp->results[j].spatial_sim, local->items[j].spatial_sim);
      EXPECT_EQ(resp->results[j].textual_sim, local->items[j].textual_sim);
    }
  }

  server.RequestShutdown();
  loop.join();
  std::remove(snap_path.c_str());
}

}  // namespace
}  // namespace uots

#include "traj/simplify.h"

#include <gtest/gtest.h>

#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

RoadNetwork TestNetwork() {
  GridNetworkOptions opts;
  opts.rows = 20;
  opts.cols = 20;
  opts.jitter = 0.0;  // perfect grid: collinearity is exact
  opts.removal_rate = 0.0;
  auto g = MakeGridNetwork(opts);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

Trajectory StraightRow(int row, int from_col, int to_col) {
  // A trajectory straight along one grid row: all interior points are
  // collinear with the endpoints.
  Trajectory t;
  for (int c = from_col; c <= to_col; ++c) {
    t.samples.push_back(
        Sample{static_cast<VertexId>(row * 20 + c), (c - from_col) * 30});
  }
  t.keywords = KeywordSet({1, 2});
  return t;
}

TEST(DouglasPeucker, CollinearCollapsesToEndpoints) {
  const RoadNetwork g = TestNetwork();
  const Trajectory t = StraightRow(5, 2, 15);
  const Trajectory s = SimplifyDouglasPeucker(g, t, 1.0);
  ASSERT_EQ(s.samples.size(), 2u);
  EXPECT_EQ(s.samples.front(), t.samples.front());
  EXPECT_EQ(s.samples.back(), t.samples.back());
  EXPECT_EQ(s.keywords, t.keywords);
  EXPECT_TRUE(s.IsValid());
}

TEST(DouglasPeucker, CornerIsKept) {
  const RoadNetwork g = TestNetwork();
  // L-shaped route: along row 3 then down column 10.
  Trajectory t;
  for (int c = 0; c <= 10; ++c) {
    t.samples.push_back(Sample{static_cast<VertexId>(3 * 20 + c), c * 30});
  }
  for (int r = 4; r <= 12; ++r) {
    t.samples.push_back(
        Sample{static_cast<VertexId>(r * 20 + 10), 300 + (r - 3) * 30});
  }
  const Trajectory s = SimplifyDouglasPeucker(g, t, 10.0);
  // Endpoints plus the corner at (row 3, col 10).
  ASSERT_EQ(s.samples.size(), 3u);
  EXPECT_EQ(s.samples[1].vertex, static_cast<VertexId>(3 * 20 + 10));
}

TEST(DouglasPeucker, ErrorBoundedByTolerance) {
  GridNetworkOptions gopts;
  gopts.rows = 25;
  gopts.cols = 25;
  gopts.seed = 9;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 40;
  topts.sample_stride = 1;  // dense: real route shape
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  for (double tolerance : {25.0, 100.0, 400.0}) {
    for (TrajId id = 0; id < data->store.size(); ++id) {
      const Trajectory t = data->store.Materialize(id);
      const Trajectory s = SimplifyDouglasPeucker(*g, t, tolerance);
      EXPECT_TRUE(s.IsValid());
      EXPECT_LE(s.samples.size(), t.samples.size());
      EXPECT_LE(SimplificationError(*g, t, s), tolerance + 1e-9)
          << "traj " << id << " tol " << tolerance;
    }
  }
}

TEST(DouglasPeucker, LargerToleranceKeepsFewerSamples) {
  GridNetworkOptions gopts;
  gopts.rows = 25;
  gopts.cols = 25;
  gopts.seed = 10;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 20;
  topts.sample_stride = 1;
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  size_t tight = 0, loose = 0;
  for (TrajId id = 0; id < data->store.size(); ++id) {
    const Trajectory t = data->store.Materialize(id);
    tight += SimplifyDouglasPeucker(*g, t, 20.0).samples.size();
    loose += SimplifyDouglasPeucker(*g, t, 500.0).samples.size();
  }
  EXPECT_LT(loose, tight);
}

TEST(DouglasPeucker, TinyTrajectoriesUntouched) {
  const RoadNetwork g = TestNetwork();
  Trajectory one;
  one.samples = {Sample{3, 0}};
  EXPECT_EQ(SimplifyDouglasPeucker(g, one, 10.0).samples.size(), 1u);
  Trajectory two;
  two.samples = {Sample{3, 0}, Sample{4, 10}};
  EXPECT_EQ(SimplifyDouglasPeucker(g, two, 10.0).samples.size(), 2u);
}

TEST(DownsampleUniform, KeepsEndpointsAndOrder) {
  const RoadNetwork g = TestNetwork();
  const Trajectory t = StraightRow(2, 0, 19);
  const Trajectory s = DownsampleUniform(t, 5);
  ASSERT_EQ(s.samples.size(), 5u);
  EXPECT_EQ(s.samples.front(), t.samples.front());
  EXPECT_EQ(s.samples.back(), t.samples.back());
  EXPECT_TRUE(s.IsValid());
}

TEST(DownsampleUniform, NoopWhenAlreadySmall) {
  const Trajectory t = StraightRow(2, 0, 3);
  EXPECT_EQ(DownsampleUniform(t, 10).samples.size(), t.samples.size());
}

TEST(SimplificationError, ZeroWhenNothingDropped) {
  const RoadNetwork g = TestNetwork();
  const Trajectory t = StraightRow(1, 0, 6);
  EXPECT_DOUBLE_EQ(SimplificationError(g, t, t), 0.0);
}

}  // namespace
}  // namespace uots

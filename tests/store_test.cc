// Trajectory model, columnar store, IO round-trips, and splitting.

#include "traj/store.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "traj/generator.h"
#include "traj/io.h"

namespace uots {
namespace {

Trajectory MakeTraj(std::vector<Sample> samples, std::vector<TermId> keys) {
  Trajectory t;
  t.samples = std::move(samples);
  t.keywords = KeywordSet(std::move(keys));
  return t;
}

TEST(Trajectory, ValidityRules) {
  EXPECT_FALSE(Trajectory{}.IsValid());  // empty
  EXPECT_TRUE(MakeTraj({{0, 10}, {1, 20}}, {}).IsValid());
  EXPECT_TRUE(MakeTraj({{0, 10}, {1, 10}}, {}).IsValid());  // equal times ok
  EXPECT_FALSE(MakeTraj({{0, 20}, {1, 10}}, {}).IsValid());  // decreasing
  EXPECT_FALSE(MakeTraj({{0, -1}}, {}).IsValid());           // negative
  EXPECT_FALSE(MakeTraj({{0, kSecondsPerDay}}, {}).IsValid());  // out of day
}

TEST(TrajectoryStore, AddAndRead) {
  TrajectoryStore store;
  EXPECT_TRUE(store.empty());
  auto id1 = store.Add(MakeTraj({{3, 100}, {4, 200}}, {7, 5}));
  auto id2 = store.Add(MakeTraj({{9, 50}}, {}));
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_EQ(*id1, 0u);
  EXPECT_EQ(*id2, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.LengthOf(0), 2u);
  EXPECT_EQ(store.LengthOf(1), 1u);
  EXPECT_EQ(store.SamplesOf(0)[1], (Sample{4, 200}));
  EXPECT_EQ(store.KeywordsOf(0).ToVector(), (std::vector<TermId>{5, 7}));
  EXPECT_TRUE(store.KeywordsOf(1).empty());
  EXPECT_EQ(store.TimeRangeOf(0), (std::pair<int32_t, int32_t>{100, 200}));
  EXPECT_DOUBLE_EQ(store.AverageLength(), 1.5);
  EXPECT_EQ(store.TotalSamples(), 3u);
}

TEST(TrajectoryStore, RejectsInvalid) {
  TrajectoryStore store;
  EXPECT_FALSE(store.Add(Trajectory{}).ok());
  EXPECT_FALSE(store.Add(MakeTraj({{0, 5}, {1, 4}}, {})).ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(TrajectoryStore, MaterializeRoundTrips) {
  TrajectoryStore store;
  const Trajectory t = MakeTraj({{1, 10}, {2, 20}, {3, 30}}, {4, 2});
  ASSERT_TRUE(store.Add(t).ok());
  const Trajectory back = store.Materialize(0);
  EXPECT_EQ(back.samples, t.samples);
  EXPECT_EQ(back.keywords, t.keywords);
}

TEST(TrajectoryIO, SaveLoadRoundTrip) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(MakeTraj({{1, 10}, {2, 25}}, {3, 1, 3})).ok());
  ASSERT_TRUE(store.Add(MakeTraj({{5, 0}}, {})).ok());
  const std::string path = testing::TempDir() + "/uots_traj_roundtrip.txt";
  ASSERT_TRUE(SaveTrajectories(store, path).ok());
  auto loaded = LoadTrajectories(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), store.size());
  for (TrajId id = 0; id < store.size(); ++id) {
    const Trajectory a = store.Materialize(id);
    const Trajectory b = loaded->Materialize(id);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.keywords, b.keywords);
  }
  std::remove(path.c_str());
}

TEST(TrajectoryIO, LoadMissingFails) {
  EXPECT_FALSE(LoadTrajectories("/no/such/file.txt").ok());
}

TEST(SplitByDuration, SplitsAtWindowBoundaries) {
  Trajectory t = MakeTraj(
      {{0, 0}, {1, 100}, {2, 250}, {3, 400}, {4, 900}, {5, 1000}}, {1});
  const auto parts = SplitByDuration(t, 300);
  // Windows: [0,100,250] (400-0>300 starts new), [400], [900,1000].
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].samples.size(), 3u);
  EXPECT_EQ(parts[1].samples.size(), 1u);
  EXPECT_EQ(parts[2].samples.size(), 2u);
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.samples.size();
    EXPECT_TRUE(p.IsValid());
    EXPECT_EQ(p.keywords, t.keywords);  // keywords inherited
  }
  EXPECT_EQ(total, t.samples.size());
}

TEST(SplitByDuration, NoSplitWhenShort) {
  Trajectory t = MakeTraj({{0, 0}, {1, 50}}, {});
  const auto parts = SplitByDuration(t, 1000);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].samples.size(), 2u);
}

}  // namespace
}  // namespace uots

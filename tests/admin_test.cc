// Admin-plane unit tests: the HTTP/1.0 request parser, response encoding,
// the slow-query log's ring semantics, and the Prometheus text helpers
// used by both the exporter and the scrape client.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "server/admin.h"
#include "server/http.h"

namespace uots {
namespace {

using promtext::DeltaQuantileSeconds;
using promtext::FindValue;
using promtext::HistogramBucket;
using promtext::MangleMetricName;
using promtext::ParseHistogramBuckets;

HttpRequestParser::Next Feed(HttpRequestParser* p, const std::string& bytes,
                             HttpRequest* out) {
  p->Append(bytes.data(), bytes.size());
  return p->Poll(out);
}

TEST(HttpParser, CompleteGetWithQueryString) {
  HttpRequestParser p;
  HttpRequest req;
  ASSERT_EQ(Feed(&p, "GET /tracing?sample=16&x=y HTTP/1.0\r\n"
                     "Host: localhost\r\n\r\n",
                 &req),
            HttpRequestParser::Next::kRequest);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/tracing");
  EXPECT_EQ(req.query, "sample=16&x=y");
  EXPECT_EQ(req.QueryParam("sample"), "16");
  EXPECT_EQ(req.QueryParam("x"), "y");
  EXPECT_EQ(req.QueryParam("absent"), "");
}

TEST(HttpParser, PathWithoutQueryString) {
  HttpRequestParser p;
  HttpRequest req;
  ASSERT_EQ(Feed(&p, "GET /metrics HTTP/1.1\r\n\r\n", &req),
            HttpRequestParser::Next::kRequest);
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "");
}

TEST(HttpParser, IncrementalFeeding) {
  HttpRequestParser p;
  HttpRequest req;
  EXPECT_EQ(Feed(&p, "GET /hea", &req), HttpRequestParser::Next::kNeedMore);
  EXPECT_EQ(Feed(&p, "lthz HTTP/1.0\r\nUser-Agent: probe\r\n", &req),
            HttpRequestParser::Next::kNeedMore);
  ASSERT_EQ(Feed(&p, "\r\n", &req), HttpRequestParser::Next::kRequest);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/healthz");
}

TEST(HttpParser, RejectsGarbage) {
  // A query-protocol client connecting to the admin port sends a binary
  // length prefix — no spaces, no HTTP/ marker.
  HttpRequestParser p;
  HttpRequest req;
  EXPECT_EQ(Feed(&p, std::string("\x00\x00\x01\x40garbage", 11) + "\r\n\r\n",
                 &req),
            HttpRequestParser::Next::kBad);
}

TEST(HttpParser, RejectsMissingSpaces) {
  HttpRequestParser p;
  HttpRequest req;
  EXPECT_EQ(Feed(&p, "GET/metrics HTTP/1.0\r\n\r\n", &req),
            HttpRequestParser::Next::kBad);
}

TEST(HttpParser, RejectsNonSlashTarget) {
  HttpRequestParser p;
  HttpRequest req;
  EXPECT_EQ(Feed(&p, "GET metrics HTTP/1.0\r\n\r\n", &req),
            HttpRequestParser::Next::kBad);
}

TEST(HttpParser, RejectsNonHttpVersion) {
  HttpRequestParser p;
  HttpRequest req;
  EXPECT_EQ(Feed(&p, "GET /metrics SPDY/3\r\n\r\n", &req),
            HttpRequestParser::Next::kBad);
}

TEST(HttpParser, RejectsOversizedHeaderBlock) {
  HttpRequestParser p(256);
  HttpRequest req;
  std::string huge = "GET /metrics HTTP/1.0\r\nX-Pad: ";
  huge.append(512, 'a');
  // No terminator yet, but the buffer already exceeds the cap.
  EXPECT_EQ(Feed(&p, huge, &req), HttpRequestParser::Next::kTooLarge);
}

TEST(HttpParser, RejectsOversizedTerminatedHeaderBlock) {
  HttpRequestParser p(128);
  HttpRequest req;
  std::string huge = "GET /metrics HTTP/1.0\r\nX-Pad: ";
  huge.append(200, 'a');
  huge += "\r\n\r\n";
  EXPECT_EQ(Feed(&p, huge, &req), HttpRequestParser::Next::kTooLarge);
}

TEST(HttpEncode, ResponseShape) {
  const std::string resp = EncodeHttpResponse(200, "text/plain", "ok\n");
  EXPECT_EQ(resp.find("HTTP/1.0 200 OK\r\n"), 0u);
  EXPECT_NE(resp.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 7), "\r\n\r\nok\n");
}

TEST(HttpEncode, StatusTexts) {
  EXPECT_STREQ(HttpStatusText(200), "OK");
  EXPECT_STREQ(HttpStatusText(404), "Not Found");
  EXPECT_STREQ(HttpStatusText(431), "Request Header Fields Too Large");
  EXPECT_STREQ(HttpStatusText(503), "Service Unavailable");
}

SlowLogEntry Entry(const std::string& id, double total_ms) {
  SlowLogEntry e;
  e.request_id = id;
  e.total_ms = total_ms;
  return e;
}

TEST(SlowQueryLog, RecentIsNewestFirstAndBounded) {
  SlowQueryLog log(/*recent_capacity=*/3, /*slowest_capacity=*/8);
  for (int i = 1; i <= 5; ++i) {
    log.Add(Entry("r" + std::to_string(i), static_cast<double>(i)));
  }
  EXPECT_EQ(log.added(), 5);
  ASSERT_EQ(log.recent().size(), 3u);
  EXPECT_EQ(log.recent()[0].request_id, "r5");
  EXPECT_EQ(log.recent()[1].request_id, "r4");
  EXPECT_EQ(log.recent()[2].request_id, "r3");
}

TEST(SlowQueryLog, SlowestIsSortedDescending) {
  SlowQueryLog log(8, 8);
  for (const double ms : {3.0, 9.0, 1.0, 7.0}) {
    log.Add(Entry("q", ms));
  }
  ASSERT_EQ(log.slowest().size(), 4u);
  EXPECT_DOUBLE_EQ(log.slowest()[0].total_ms, 9.0);
  EXPECT_DOUBLE_EQ(log.slowest()[1].total_ms, 7.0);
  EXPECT_DOUBLE_EQ(log.slowest()[2].total_ms, 3.0);
  EXPECT_DOUBLE_EQ(log.slowest()[3].total_ms, 1.0);
}

TEST(SlowQueryLog, SlowestEvictsTheMinimumWhenFull) {
  SlowQueryLog log(2, /*slowest_capacity=*/3);
  for (const double ms : {5.0, 2.0, 8.0}) log.Add(Entry("q", ms));
  // 1.0 is faster than everything retained: dropped.
  log.Add(Entry("fast", 1.0));
  ASSERT_EQ(log.slowest().size(), 3u);
  EXPECT_DOUBLE_EQ(log.slowest()[2].total_ms, 2.0);
  // 6.0 displaces the current minimum (2.0).
  log.Add(Entry("mid", 6.0));
  ASSERT_EQ(log.slowest().size(), 3u);
  EXPECT_DOUBLE_EQ(log.slowest()[0].total_ms, 8.0);
  EXPECT_DOUBLE_EQ(log.slowest()[1].total_ms, 6.0);
  EXPECT_DOUBLE_EQ(log.slowest()[2].total_ms, 5.0);
}

TEST(Promtext, MangleMetricName) {
  EXPECT_EQ(MangleMetricName("server.request_latency"),
            "server_request_latency");
  EXPECT_EQ(MangleMetricName("server.cache.hits"), "server_cache_hits");
  EXPECT_EQ(MangleMetricName("already_clean_09"), "already_clean_09");
  EXPECT_EQ(MangleMetricName("odd-chars %!"), "odd_chars___");
}

const char kExposition[] =
    "# HELP uots_server_requests_total Total requests.\n"
    "# TYPE uots_server_requests_total counter\n"
    "uots_server_requests_total 300\n"
    "uots_server_responses_ok_total 297\n"
    "uots_lat_seconds_bucket{le=\"0.001\"} 10\n"
    "uots_lat_seconds_bucket{le=\"0.01\"} 90\n"
    "uots_lat_seconds_bucket{le=\"0.1\"} 99\n"
    "uots_lat_seconds_bucket{le=\"+Inf\"} 100\n"
    "uots_lat_seconds_sum 0.42\n"
    "uots_lat_seconds_count 100\n";

TEST(Promtext, FindValue) {
  double v = 0.0;
  ASSERT_TRUE(FindValue(kExposition, "uots_server_requests_total", &v));
  EXPECT_DOUBLE_EQ(v, 300.0);
  ASSERT_TRUE(FindValue(kExposition, "uots_lat_seconds_count", &v));
  EXPECT_DOUBLE_EQ(v, 100.0);
  // Exact-prefix match: the bare family name must not match bucket lines,
  // and comments are skipped.
  EXPECT_FALSE(FindValue(kExposition, "uots_lat_seconds", &v));
  EXPECT_FALSE(FindValue(kExposition, "uots_server_requests", &v));
  EXPECT_FALSE(FindValue(kExposition, "absent_series", &v));
}

TEST(Promtext, ParseHistogramBuckets) {
  const auto buckets = ParseHistogramBuckets(kExposition, "uots_lat_seconds");
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].le_seconds, 0.001);
  EXPECT_EQ(buckets[0].cumulative, 10);
  EXPECT_EQ(buckets[2].cumulative, 99);
  EXPECT_TRUE(std::isinf(buckets[3].le_seconds));
  EXPECT_EQ(buckets[3].cumulative, 100);
  EXPECT_TRUE(ParseHistogramBuckets(kExposition, "no_such_family").empty());
}

std::vector<HistogramBucket> Buckets(
    std::vector<std::pair<double, int64_t>> raw) {
  std::vector<HistogramBucket> out;
  for (const auto& [le, cum] : raw) out.push_back({le, cum});
  return out;
}

TEST(Promtext, DeltaQuantileNearestRank) {
  const auto before = Buckets({{0.001, 5}, {0.01, 5}, {0.1, 5},
                               {std::numeric_limits<double>::infinity(), 5}});
  // Window: 10 samples <= 1ms, 80 in (1ms, 10ms], 10 in (10ms, 100ms].
  const auto after = Buckets({{0.001, 15}, {0.01, 95}, {0.1, 105},
                              {std::numeric_limits<double>::infinity(), 105}});
  EXPECT_DOUBLE_EQ(DeltaQuantileSeconds(before, after, 50), 0.01);
  EXPECT_DOUBLE_EQ(DeltaQuantileSeconds(before, after, 5), 0.001);
  EXPECT_DOUBLE_EQ(DeltaQuantileSeconds(before, after, 99), 0.1);
  EXPECT_DOUBLE_EQ(DeltaQuantileSeconds(before, after, 100), 0.1);
}

TEST(Promtext, DeltaQuantileEmptyBeforeIsZeroBaseline) {
  // First scrape before any request: the family does not exist yet, so
  // "before" parses to an empty vector — treated as all-zero counts.
  const auto after = Buckets({{0.001, 4}, {0.01, 8},
                              {std::numeric_limits<double>::infinity(), 8}});
  EXPECT_DOUBLE_EQ(DeltaQuantileSeconds({}, after, 50), 0.001);
  EXPECT_DOUBLE_EQ(DeltaQuantileSeconds({}, after, 95), 0.01);
}

TEST(Promtext, DeltaQuantileDegenerateWindows) {
  const auto a = Buckets({{0.001, 7},
                          {std::numeric_limits<double>::infinity(), 7}});
  // No samples in the window.
  EXPECT_TRUE(std::isnan(DeltaQuantileSeconds(a, a, 50)));
  // No "after" scrape at all.
  EXPECT_TRUE(std::isnan(DeltaQuantileSeconds(a, {}, 50)));
  // Mismatched ladders (family re-defined between scrapes).
  const auto other = Buckets({{0.005, 9},
                              {std::numeric_limits<double>::infinity(), 9}});
  EXPECT_TRUE(std::isnan(DeltaQuantileSeconds(a, other, 50)));
  const auto three = Buckets({{0.001, 1}, {0.005, 9},
                              {std::numeric_limits<double>::infinity(), 9}});
  EXPECT_TRUE(std::isnan(DeltaQuantileSeconds(a, three, 50)));
}

}  // namespace
}  // namespace uots

// The key correctness property of the UOTS search: pruning never changes
// the answer. Both UOTS variants must return exactly the brute-force
// result (same scores; ids may differ only across equal scores), and the
// textual-first baseline must agree within its documented 1e-9-level
// distance-cutoff tolerance. Swept over lambda, query-location count m,
// k, and network topology via parameterized tests.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "core/algorithm.h"
#include "core/workload.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

enum class NetKind { kGrid, kRingRadial };

const TrajectoryDatabase& SharedDatabase(NetKind kind) {
  static auto* grid_db = [] {
    GridNetworkOptions gopts;
    gopts.rows = 22;
    gopts.cols = 22;
    gopts.seed = 11;
    auto g = MakeGridNetwork(gopts);
    TripGeneratorOptions topts;
    topts.num_trajectories = 400;
    topts.vocabulary_size = 150;
    topts.seed = 12;
    auto data = GenerateTrips(*g, topts);
    return new TrajectoryDatabase(std::move(*g), std::move(data->store),
                                  std::move(data->vocabulary));
  }();
  static auto* ring_db = [] {
    RingRadialNetworkOptions ropts;
    ropts.rings = 14;
    ropts.inner_ring_vertices = 8;
    ropts.seed = 13;
    auto g = MakeRingRadialNetwork(ropts);
    TripGeneratorOptions topts;
    topts.num_trajectories = 400;
    topts.vocabulary_size = 150;
    topts.seed = 14;
    auto data = GenerateTrips(*g, topts);
    return new TrajectoryDatabase(std::move(*g), std::move(data->store),
                                  std::move(data->vocabulary));
  }();
  return kind == NetKind::kGrid ? *grid_db : *ring_db;
}

// Checks `got` against brute-force ground truth. Equal scores make the
// identity of boundary items ambiguous (any tied trajectory is a correct
// answer), so the check is: (1) the score sequence matches exactly, and
// (2) every returned id carries its true score — verified against an
// extended brute-force list so ties beyond rank k are visible.
void ExpectMatchesBruteForce(const TrajectoryDatabase& db, const UotsQuery& q,
                             const SearchResult& got, double tol,
                             const char* what) {
  auto bf = CreateAlgorithm(db, AlgorithmKind::kBruteForce);
  auto rb = bf->Search(q);
  UotsQuery ext = q;
  ext.k = q.k + 32;
  auto rext = bf->Search(ext);
  ASSERT_TRUE(rb.ok() && rext.ok()) << what;
  ASSERT_EQ(rb->items.size(), got.items.size()) << what;
  std::map<TrajId, double> truth;
  for (const auto& item : rext->items) truth[item.id] = item.score;
  for (size_t i = 0; i < rb->items.size(); ++i) {
    EXPECT_NEAR(rb->items[i].score, got.items[i].score, tol)
        << what << " rank " << i;
    const auto it = truth.find(got.items[i].id);
    if (it != truth.end()) {
      EXPECT_NEAR(it->second, got.items[i].score, tol)
          << what << " claimed score of trajectory " << got.items[i].id;
    }
  }
}

using Param = std::tuple<NetKind, double /*lambda*/, int /*m*/, int /*k*/>;

class EquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(EquivalenceTest, AllExactAlgorithmsAgreeWithBruteForce) {
  const auto [kind, lambda, m, k] = GetParam();
  const TrajectoryDatabase& db = SharedDatabase(kind);

  WorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.num_locations = m;
  wopts.lambda = lambda;
  wopts.k = k;
  wopts.seed = 100 + static_cast<uint64_t>(lambda * 10) + m * 7 + k;
  auto queries = MakeWorkload(db, wopts);
  ASSERT_TRUE(queries.ok());

  auto bf = CreateAlgorithm(db, AlgorithmKind::kBruteForce);
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  auto uots_rr = CreateAlgorithm(db, AlgorithmKind::kUotsNoHeuristic);
  auto uots_seq = CreateAlgorithm(db, AlgorithmKind::kUotsSequential);
  auto tf = CreateAlgorithm(db, AlgorithmKind::kTextFirst);

  for (const UotsQuery& q : *queries) {
    auto rb = bf->Search(q);
    auto ru = uots->Search(q);
    auto rr = uots_rr->Search(q);
    auto rs = uots_seq->Search(q);
    auto rt = tf->Search(q);
    ASSERT_TRUE(rb.ok() && ru.ok() && rr.ok() && rs.ok() && rt.ok());

    ExpectMatchesBruteForce(db, q, *ru, 1e-9, "UOTS");
    ExpectMatchesBruteForce(db, q, *rr, 1e-9, "UOTS-w/o-h");
    ExpectMatchesBruteForce(db, q, *rs, 1e-9, "UOTS-seq");
    ExpectMatchesBruteForce(db, q, *rt, 1e-6, "TF");

    // Component decomposition must be consistent.
    for (const auto& item : ru->items) {
      EXPECT_NEAR(item.score,
                  SimilarityModel::Combine(q.lambda, item.spatial_sim,
                                           item.textual_sim),
                  1e-12);
      EXPECT_GE(item.spatial_sim, 0.0);
      EXPECT_LE(item.spatial_sim, 1.0);
      EXPECT_GE(item.textual_sim, 0.0);
      EXPECT_LE(item.textual_sim, 1.0);
    }

    // Stats sanity: the pruning search must not visit more than everything,
    // and candidates are a subset of visits.
    EXPECT_LE(ru->stats.visited_trajectories,
              static_cast<int64_t>(db.store().size()));
    EXPECT_LE(ru->stats.candidates, ru->stats.visited_trajectories);
    if (q.lambda > 0.0) {
      EXPECT_LE(ru->stats.settled_vertices,
                static_cast<int64_t>(q.locations.size() *
                                     db.network().NumVertices()));
      EXPECT_GT(ru->stats.settled_vertices, 0);
    }
  }
}

std::string SweepName(const ::testing::TestParamInfo<Param>& info) {
  std::string name =
      std::get<0>(info.param) == NetKind::kGrid ? "grid" : "ring";
  name += "_l" + std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
  name += "_m" + std::to_string(std::get<2>(info.param));
  name += "_k" + std::to_string(std::get<3>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::Values(NetKind::kGrid, NetKind::kRingRadial),
                       ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0),
                       ::testing::Values(1, 3, 6),
                       ::testing::Values(1, 10)),
    SweepName);

// ---- Edge cases ----

TEST(SearchEdgeCases, KLargerThanDatabaseReturnsEverything) {
  const TrajectoryDatabase& db = SharedDatabase(NetKind::kGrid);
  UotsQuery q;
  q.locations = {0, 5};
  q.keywords = KeywordSet({1, 2, 3});
  q.k = static_cast<int>(db.store().size()) + 50;
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  auto bf = CreateAlgorithm(db, AlgorithmKind::kBruteForce);
  auto ru = uots->Search(q);
  auto rb = bf->Search(q);
  ASSERT_TRUE(ru.ok() && rb.ok());
  EXPECT_EQ(ru->items.size(), db.store().size());
  ExpectMatchesBruteForce(db, q, *ru, 1e-9, "UOTS k>n");
}

TEST(SearchEdgeCases, DuplicateQueryLocations) {
  const TrajectoryDatabase& db = SharedDatabase(NetKind::kGrid);
  UotsQuery q;
  q.locations = {7, 7, 7};
  q.keywords = KeywordSet({1});
  q.k = 5;
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  auto bf = CreateAlgorithm(db, AlgorithmKind::kBruteForce);
  auto ru = uots->Search(q);
  auto rb = bf->Search(q);
  ASSERT_TRUE(ru.ok() && rb.ok());
  ExpectMatchesBruteForce(db, q, *ru, 1e-9, "UOTS dup locations");
}

TEST(SearchEdgeCases, EmptyKeywordsIsPureSpatialRanking) {
  const TrajectoryDatabase& db = SharedDatabase(NetKind::kGrid);
  UotsQuery q;
  q.locations = {3, 40, 80};
  q.k = 5;
  q.lambda = 0.5;  // textual contributes 0 for everyone
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  auto bf = CreateAlgorithm(db, AlgorithmKind::kBruteForce);
  auto ru = uots->Search(q);
  auto rb = bf->Search(q);
  ASSERT_TRUE(ru.ok() && rb.ok());
  ExpectMatchesBruteForce(db, q, *ru, 1e-9, "UOTS empty keywords");
  for (const auto& item : ru->items) EXPECT_DOUBLE_EQ(item.textual_sim, 0.0);
}

TEST(SearchEdgeCases, UnknownKeywordsMatchNothingTextually) {
  const TrajectoryDatabase& db = SharedDatabase(NetKind::kGrid);
  UotsQuery q;
  q.locations = {10};
  // Terms far outside the generated vocabulary.
  q.keywords = KeywordSet({900000, 900001});
  q.k = 3;
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  auto rb = CreateAlgorithm(db, AlgorithmKind::kBruteForce)->Search(q);
  auto ru = uots->Search(q);
  ASSERT_TRUE(ru.ok() && rb.ok());
  ExpectMatchesBruteForce(db, q, *ru, 1e-9, "unknown keywords");
  for (const auto& item : ru->items) EXPECT_DOUBLE_EQ(item.textual_sim, 0.0);
}

TEST(SearchEdgeCases, InvalidQueriesRejectedByAllAlgorithms) {
  const TrajectoryDatabase& db = SharedDatabase(NetKind::kGrid);
  UotsQuery q;  // no locations
  for (auto kind : {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
                    AlgorithmKind::kUots, AlgorithmKind::kUotsNoHeuristic,
                    AlgorithmKind::kUotsSequential, AlgorithmKind::kEuclidean}) {
    auto algo = CreateAlgorithm(db, kind);
    EXPECT_FALSE(algo->Search(q).ok()) << algo->name();
  }
}

TEST(SearchEdgeCases, ResultsSortedDescendingWithIdTiebreak) {
  const TrajectoryDatabase& db = SharedDatabase(NetKind::kRingRadial);
  UotsQuery q;
  q.locations = {1, 2};
  q.keywords = KeywordSet({0, 1, 2});
  q.k = 25;
  auto ru = CreateAlgorithm(db, AlgorithmKind::kUots)->Search(q);
  ASSERT_TRUE(ru.ok());
  for (size_t i = 1; i < ru->items.size(); ++i) {
    const auto& prev = ru->items[i - 1];
    const auto& curr = ru->items[i];
    EXPECT_TRUE(prev.score > curr.score ||
                (prev.score == curr.score && prev.id < curr.id));
  }
}

TEST(SearchEdgeCases, PruningActuallyHappensOnSelectiveQueries) {
  // Not a correctness property, but the point of the algorithm: with the
  // default selective workload, UOTS must not do a full scan.
  const TrajectoryDatabase& db = SharedDatabase(NetKind::kGrid);
  WorkloadOptions wopts;
  wopts.num_queries = 5;
  wopts.k = 1;
  auto queries = MakeWorkload(db, wopts);
  ASSERT_TRUE(queries.ok());
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  int64_t settled = 0;
  for (const auto& q : *queries) {
    auto r = uots->Search(q);
    ASSERT_TRUE(r.ok());
    settled += r->stats.settled_vertices;
  }
  const int64_t full = static_cast<int64_t>(5 * wopts.num_locations *
                                            db.network().NumVertices());
  EXPECT_LT(settled, full) << "expansions never terminated early";
}

}  // namespace
}  // namespace uots

#include "util/status.h"

#include <gtest/gtest.h>

namespace uots {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("lambda out of range");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "lambda out of range");
  EXPECT_EQ(s.ToString(), "InvalidArgument: lambda out of range");
}

TEST(Status, AllConstructorsSetMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  UOTS_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(Status, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace uots

// Trip generator: determinism, structural validity, and the statistical
// properties the substitution (DESIGN.md §5.4) must preserve.

#include "traj/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "net/dijkstra.h"
#include "net/generators.h"

namespace uots {
namespace {

RoadNetwork TestNetwork() {
  GridNetworkOptions opts;
  opts.rows = 25;
  opts.cols = 25;
  opts.seed = 4;
  auto g = MakeGridNetwork(opts);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

TEST(TripGenerator, ProducesRequestedCount) {
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.num_trajectories = 150;
  auto data = GenerateTrips(g, opts);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->store.size(), 150u);
  EXPECT_EQ(data->hotspots.size(), static_cast<size_t>(opts.num_hotspots));
  EXPECT_EQ(data->vocabulary.size(),
            static_cast<size_t>(opts.vocabulary_size));
}

TEST(TripGenerator, DeterministicForSeed) {
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.num_trajectories = 40;
  opts.seed = 77;
  auto a = GenerateTrips(g, opts);
  auto b = GenerateTrips(g, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->store.size(), b->store.size());
  for (TrajId id = 0; id < a->store.size(); ++id) {
    EXPECT_EQ(a->store.Materialize(id).samples, b->store.Materialize(id).samples);
    EXPECT_EQ(a->store.KeywordsOf(id), b->store.KeywordsOf(id));
  }
}

TEST(TripGenerator, DifferentSeedsDiffer) {
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.num_trajectories = 20;
  opts.seed = 1;
  auto a = GenerateTrips(g, opts);
  opts.seed = 2;
  auto b = GenerateTrips(g, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (TrajId id = 0; id < a->store.size(); ++id) {
    if (a->store.Materialize(id).samples != b->store.Materialize(id).samples) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(TripGenerator, TrajectoriesAreStructurallyValid) {
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.num_trajectories = 100;
  auto data = GenerateTrips(g, opts);
  ASSERT_TRUE(data.ok());
  for (TrajId id = 0; id < data->store.size(); ++id) {
    const auto samples = data->store.SamplesOf(id);
    ASSERT_GE(samples.size(), 2u);
    for (size_t i = 0; i < samples.size(); ++i) {
      EXPECT_LT(samples[i].vertex, g.NumVertices());
      EXPECT_GE(samples[i].time_s, 0);
      EXPECT_LT(samples[i].time_s, kSecondsPerDay);
      if (i > 0) {
        EXPECT_GE(samples[i].time_s, samples[i - 1].time_s);
        EXPECT_NE(samples[i].vertex, samples[i - 1].vertex);
      }
    }
    const auto& keys = data->store.KeywordsOf(id);
    EXPECT_GE(keys.size(), 1u);
    EXPECT_LE(keys.size(), static_cast<size_t>(opts.max_keywords));
    for (TermId t : keys.terms()) {
      EXPECT_LT(t, static_cast<TermId>(opts.vocabulary_size));
    }
  }
}

TEST(TripGenerator, SamplesFollowNetworkRoutes) {
  // Adjacent samples must be near each other in network distance (the route
  // between them is at most `stride` edges).
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.num_trajectories = 10;
  opts.sample_stride = 3;
  auto data = GenerateTrips(g, opts);
  ASSERT_TRUE(data.ok());
  for (TrajId id = 0; id < data->store.size(); ++id) {
    const auto samples = data->store.SamplesOf(id);
    for (size_t i = 0; i + 1 < samples.size(); ++i) {
      const double d =
          ShortestPathDistance(g, samples[i].vertex, samples[i + 1].vertex);
      // Grid spacing is 150 m; stride 3 with jitter stays well under 1.5 km.
      EXPECT_LT(d, 1500.0);
    }
  }
}

TEST(TripGenerator, HotspotBiasConcentratesEndpoints) {
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions biased, uniform;
  biased.num_trajectories = uniform.num_trajectories = 200;
  biased.hotspot_bias = 1.0;
  uniform.hotspot_bias = 0.0;
  biased.seed = uniform.seed = 5;
  auto db = GenerateTrips(g, biased);
  auto du = GenerateTrips(g, uniform);
  ASSERT_TRUE(db.ok() && du.ok());
  // Count distinct endpoint vertices: biased trips reuse hotspot areas.
  std::set<VertexId> biased_ends, uniform_ends;
  for (TrajId id = 0; id < 200; ++id) {
    biased_ends.insert(db->store.SamplesOf(id).back().vertex);
    uniform_ends.insert(du->store.SamplesOf(id).back().vertex);
  }
  EXPECT_LT(biased_ends.size(), uniform_ends.size());
}

TEST(TripGenerator, TopicAffinityCorrelatesKeywordsWithDestinations) {
  // The spatial-textual correlation property (DESIGN.md §5.4): trips with
  // the same destination topic share more keywords than trips with
  // different topics.
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.num_trajectories = 300;
  opts.topic_affinity = 1.0;
  opts.hotspot_bias = 1.0;
  opts.seed = 6;
  auto data = GenerateTrips(g, opts);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->topics.size(), data->store.size());

  double same_sum = 0, cross_sum = 0;
  int same_n = 0, cross_n = 0;
  for (TrajId a = 0; a < 150; ++a) {
    for (TrajId b = a + 1; b < 150; ++b) {
      if (data->topics[a] < 0 || data->topics[b] < 0) continue;
      const auto& ka = data->store.KeywordsOf(a);
      const auto& kb = data->store.KeywordsOf(b);
      const double jac = static_cast<double>(ka.IntersectionSize(kb)) /
                         static_cast<double>(ka.UnionSize(kb));
      if (data->topics[a] == data->topics[b]) {
        same_sum += jac;
        ++same_n;
      } else {
        cross_sum += jac;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same_sum / same_n, 2.0 * (cross_sum / cross_n))
      << "same-topic trips must share far more keywords";
}

TEST(TripGenerator, RejectsBadOptions) {
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.sample_stride = 0;
  EXPECT_FALSE(GenerateTrips(g, opts).ok());
  opts = {};
  opts.min_keywords = 5;
  opts.max_keywords = 3;
  EXPECT_FALSE(GenerateTrips(g, opts).ok());
  opts = {};
  opts.vocabulary_size = 2;
  EXPECT_FALSE(GenerateTrips(g, opts).ok());
  opts = {};
  opts.speed_mps = 0;
  EXPECT_FALSE(GenerateTrips(g, opts).ok());
  opts = {};
  opts.hotspot_bias = 1.5;
  EXPECT_FALSE(GenerateTrips(g, opts).ok());
}

TEST(TripGenerator, ZeroTrajectoriesIsFine) {
  const RoadNetwork g = TestNetwork();
  TripGeneratorOptions opts;
  opts.num_trajectories = 0;
  auto data = GenerateTrips(g, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->store.empty());
}

}  // namespace
}  // namespace uots

// Snapshot storage engine: CRC vectors, round-trip equivalence, and
// corruption rejection.
//
// The round-trip property is the one that matters: a database built from
// scratch and the same database loaded back from a snapshot must answer
// every query bit-for-bit identically, for every algorithm. The corruption
// tests then flip/truncate every part of the file and require a clean
// Status (these run under asan in CI — an out-of-bounds read here is a
// test failure, not just a wrong answer).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/workload.h"
#include "net/generators.h"
#include "net/io.h"
#include "oracle/ch_oracle.h"
#include "oracle/querier.h"
#include "storage/crc32c.h"
#include "storage/format.h"
#include "storage/resolver.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "traj/generator.h"
#include "traj/io.h"
#include "traj/time_index.h"
#include "util/rng.h"

namespace uots {
namespace {

using storage::Crc32c;
using storage::Crc32cExtend;
using storage::InspectSnapshot;
using storage::LoadSnapshot;
using storage::SectionId;
using storage::VerifySnapshot;
using storage::WriteSnapshot;

TEST(Crc32c, KnownVectors) {
  // The canonical CRC32C check value (iSCSI/RFC 3720 test vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<uint8_t> ffs(32, 0xFF);
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, UnalignedStartMatches) {
  // The slicing loop has an alignment prologue; it must not change results.
  std::vector<uint8_t> buf(64);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<uint8_t>(i * 7);
  for (size_t shift = 0; shift < 8; ++shift) {
    std::vector<uint8_t> shifted(buf.size() + shift);
    std::memcpy(shifted.data() + shift, buf.data(), buf.size());
    EXPECT_EQ(Crc32c(shifted.data() + shift, buf.size()),
              Crc32c(buf.data(), buf.size()));
  }
}

/// A small but fully featured database (keywords, times, connected net).
std::unique_ptr<TrajectoryDatabase> MakeDatabase(uint64_t seed = 7) {
  GridNetworkOptions net_opts;
  net_opts.rows = 18;
  net_opts.cols = 18;
  net_opts.seed = seed;
  auto g = MakeGridNetwork(net_opts);
  EXPECT_TRUE(g.ok());
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 300;
  trip_opts.vocabulary_size = 120;
  trip_opts.seed = seed + 1;
  auto trips = GenerateTrips(*g, trip_opts);
  EXPECT_TRUE(trips.ok());
  return std::make_unique<TrajectoryDatabase>(
      std::move(*g), std::move(trips->store), std::move(trips->vocabulary));
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

class SnapshotRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeDatabase();
    path_ = TempPath("roundtrip.snap");
    ASSERT_TRUE(WriteSnapshot(*db_, path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<TrajectoryDatabase> db_;
  std::string path_;
};

TEST_F(SnapshotRoundTrip, VerifiesClean) {
  const Status st = VerifySnapshot(path_);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SnapshotRoundTrip, ContentsSurviveByteForByte) {
  auto loaded_r = LoadSnapshot(path_);
  ASSERT_TRUE(loaded_r.ok()) << loaded_r.status().ToString();
  const TrajectoryDatabase& loaded = **loaded_r;

  ASSERT_EQ(loaded.network().NumVertices(), db_->network().NumVertices());
  ASSERT_EQ(loaded.network().NumEdges(), db_->network().NumEdges());
  for (VertexId v = 0; v < db_->network().NumVertices(); ++v) {
    EXPECT_EQ(loaded.network().PositionOf(v).x, db_->network().PositionOf(v).x);
    const auto a = loaded.network().Neighbors(v);
    const auto b = db_->network().Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
  ASSERT_EQ(loaded.store().size(), db_->store().size());
  for (TrajId id = 0; id < db_->store().size(); ++id) {
    const Trajectory a = loaded.store().Materialize(id);
    const Trajectory b = db_->store().Materialize(id);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.keywords, b.keywords);
  }
  // Vocabulary strings round-trip through the flattened blob.
  ASSERT_EQ(loaded.vocabulary().size(), db_->vocabulary().size());
  for (TermId t = 0; t < db_->vocabulary().size(); ++t) {
    EXPECT_EQ(loaded.vocabulary().TermOf(t), db_->vocabulary().TermOf(t));
    EXPECT_EQ(loaded.vocabulary().Lookup(db_->vocabulary().TermOf(t)), t);
  }
}

TEST_F(SnapshotRoundTrip, QueriesBitIdenticalAcrossAllEngines) {
  auto loaded_r = LoadSnapshot(path_);
  ASSERT_TRUE(loaded_r.ok()) << loaded_r.status().ToString();
  const TrajectoryDatabase& loaded = **loaded_r;

  WorkloadOptions wopts;
  wopts.num_queries = 12;
  wopts.seed = 13;
  auto queries = MakeWorkload(*db_, wopts);
  ASSERT_TRUE(queries.ok());

  const AlgorithmKind kinds[] = {
      AlgorithmKind::kBruteForce,     AlgorithmKind::kTextFirst,
      AlgorithmKind::kUots,           AlgorithmKind::kUotsNoHeuristic,
      AlgorithmKind::kUotsSequential, AlgorithmKind::kEuclidean};
  for (const AlgorithmKind kind : kinds) {
    QueryOptions qopts;
    qopts.algorithm = kind;
    for (size_t i = 0; i < queries->size(); ++i) {
      auto a = RunQuery(*db_, (*queries)[i], qopts);
      auto b = RunQuery(loaded, (*queries)[i], qopts);
      ASSERT_TRUE(a.ok() && b.ok()) << ToString(kind) << " query " << i;
      ASSERT_EQ(a->items.size(), b->items.size())
          << ToString(kind) << " query " << i;
      for (size_t j = 0; j < a->items.size(); ++j) {
        EXPECT_EQ(a->items[j].id, b->items[j].id);
        EXPECT_EQ(a->items[j].score, b->items[j].score);
        EXPECT_EQ(a->items[j].spatial_sim, b->items[j].spatial_sim);
        EXPECT_EQ(a->items[j].textual_sim, b->items[j].textual_sim);
      }
    }
  }
}

TEST_F(SnapshotRoundTrip, LoadedDatabaseIsMostlyMapped) {
  auto loaded_r = LoadSnapshot(path_);
  ASSERT_TRUE(loaded_r.ok());
  const MemoryBreakdown built = db_->Memory();
  const MemoryBreakdown mapped = (*loaded_r)->Memory();
  EXPECT_EQ(built.mmap_bytes, 0u);
  EXPECT_GT(built.heap_bytes, 0u);
  EXPECT_GT(mapped.mmap_bytes, 0u);
  // The bulk columns live in the mapping; only scratch + vocabulary own
  // heap memory.
  EXPECT_LT(mapped.heap_bytes, built.heap_bytes / 2);
}

TEST_F(SnapshotRoundTrip, FingerprintIsStableAndDatasetSensitive) {
  auto a = InspectSnapshot(path_);
  ASSERT_TRUE(a.ok());
  // Rewriting the same database yields the same fingerprint...
  const std::string again = TempPath("roundtrip2.snap");
  ASSERT_TRUE(WriteSnapshot(*db_, again).ok());
  auto b = InspectSnapshot(again);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->superblock.dataset_fingerprint,
            b->superblock.dataset_fingerprint);
  std::remove(again.c_str());
  // ...and a different dataset yields a different one.
  auto other_db = MakeDatabase(/*seed=*/1234);
  const std::string other = TempPath("other.snap");
  ASSERT_TRUE(WriteSnapshot(*other_db, other).ok());
  auto c = InspectSnapshot(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->superblock.dataset_fingerprint,
            c->superblock.dataset_fingerprint);
  std::remove(other.c_str());
}

// --- corruption ---------------------------------------------------------

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Recomputes every payload CRC, the dataset fingerprint, the table CRC,
/// and the superblock CRC over (possibly mutated) snapshot bytes —
/// simulating the self-consistent tamperer in this format's threat model,
/// for whom only the structural/order validation stands.
void FixUpAllChecksums(std::vector<char>* bytes) {
  std::vector<storage::SectionEntry> table(storage::kSectionCount);
  std::memcpy(table.data(), bytes->data() + sizeof(storage::Superblock),
              storage::kSectionCount * sizeof(storage::SectionEntry));
  for (auto& entry : table) {
    entry.crc32c = Crc32c(bytes->data() + entry.offset,
                          static_cast<size_t>(entry.size_bytes));
  }
  std::memcpy(bytes->data() + sizeof(storage::Superblock), table.data(),
              storage::kSectionCount * sizeof(storage::SectionEntry));

  storage::Superblock sb;
  std::memcpy(&sb, bytes->data(), sizeof(sb));
  uint32_t fingerprint = 0;
  for (const auto& entry : table) {
    const uint32_t triple[3] = {entry.id, static_cast<uint32_t>(entry.count),
                                entry.crc32c};
    fingerprint = Crc32cExtend(fingerprint, triple, sizeof(triple));
  }
  sb.dataset_fingerprint = fingerprint;
  sb.section_table_crc = Crc32c(
      table.data(), storage::kSectionCount * sizeof(storage::SectionEntry));
  sb.superblock_crc = 0;
  sb.superblock_crc = Crc32c(&sb, sizeof(sb));
  std::memcpy(bytes->data(), &sb, sizeof(sb));
}

class SnapshotCorruption : public SnapshotRoundTrip {
 protected:
  /// Writes a mutated copy and checks every consumer fails cleanly.
  void ExpectRejected(const std::vector<char>& bytes, const char* what) {
    const std::string bad = TempPath("corrupt.snap");
    WriteAll(bad, bytes);
    const Status vst = VerifySnapshot(bad);
    EXPECT_FALSE(vst.ok()) << what;
    auto loaded = LoadSnapshot(bad);
    EXPECT_FALSE(loaded.ok()) << what;
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << what;
    }
    std::remove(bad.c_str());
  }

  /// Applies `mutate` to the section's payload bytes, rewrites every
  /// checksum so only structural validation can object, and expects
  /// rejection.
  void MutateSectionAndExpectRejected(
      SectionId id, const char* what,
      const std::function<void(char* payload, const storage::SectionEntry&)>&
          mutate) {
    std::vector<char> bad = ReadAll(path_);
    auto info = InspectSnapshot(path_);
    ASSERT_TRUE(info.ok());
    const auto& e = info->sections[static_cast<uint32_t>(id)];
    mutate(bad.data() + e.offset, e);
    FixUpAllChecksums(&bad);
    ExpectRejected(bad, what);
  }
};

TEST_F(SnapshotCorruption, FlippedByteInEverySectionIsRejected) {
  const std::vector<char> good = ReadAll(path_);
  auto info = InspectSnapshot(path_);
  ASSERT_TRUE(info.ok());
  for (const auto& e : info->sections) {
    if (e.size_bytes == 0) continue;
    std::vector<char> bad = good;
    bad[e.offset + e.size_bytes / 2] ^= 0x40;
    ExpectRejected(
        bad, storage::SectionName(static_cast<SectionId>(e.id)));
  }
}

TEST_F(SnapshotCorruption, TruncationsAreRejected) {
  const std::vector<char> good = ReadAll(path_);
  for (const size_t keep :
       {size_t{0}, size_t{4}, sizeof(storage::Superblock) - 1,
        sizeof(storage::Superblock), good.size() / 2, good.size() - 1}) {
    std::vector<char> bad(good.begin(),
                          good.begin() + static_cast<ptrdiff_t>(keep));
    ExpectRejected(bad, ("truncated to " + std::to_string(keep)).c_str());
  }
}

TEST_F(SnapshotCorruption, BadMagicVersionEndiannessRejected) {
  const std::vector<char> good = ReadAll(path_);
  {
    std::vector<char> bad = good;
    bad[0] = 'X';
    ExpectRejected(bad, "magic");
  }
  {
    // format_version sits right after the 8-byte magic; the superblock CRC
    // is recomputed so only the version check can catch it.
    std::vector<char> bad = good;
    storage::Superblock sb;
    std::memcpy(&sb, bad.data(), sizeof(sb));
    sb.format_version = 99;
    sb.superblock_crc = 0;
    sb.superblock_crc = Crc32c(&sb, sizeof(sb));
    std::memcpy(bad.data(), &sb, sizeof(sb));
    ExpectRejected(bad, "version");
  }
  {
    std::vector<char> bad = good;
    storage::Superblock sb;
    std::memcpy(&sb, bad.data(), sizeof(sb));
    sb.endian_tag = 0x04030201u;
    sb.superblock_crc = 0;
    sb.superblock_crc = Crc32c(&sb, sizeof(sb));
    std::memcpy(bad.data(), &sb, sizeof(sb));
    ExpectRejected(bad, "endianness");
  }
}

TEST_F(SnapshotCorruption, RewrittenChecksumsCannotSmuggleBadOffsets) {
  // Corrupt a CSR offsets array AND fix up every checksum, simulating
  // deliberate tampering; the monotonicity/bounds scan must still reject.
  MutateSectionAndExpectRejected(
      SectionId::kTrajOffsets, "tampered offsets",
      [](char* payload, const storage::SectionEntry&) {
        const uint64_t huge = static_cast<uint64_t>(1) << 40;
        std::memcpy(payload + 8, &huge, sizeof(huge));
      });
}

TEST_F(SnapshotCorruption, OverflowingSectionCountIsRejected) {
  // count * elem_size is computed mod 2^64: with 8-byte elements, a count
  // inflated by 2^61 multiplies back to the true size_bytes. Inflate the
  // time-index count in BOTH the directory and the meta record (so the
  // cross-check agrees) and rewrite every CRC; the count/size validation
  // must reject without ever building a ~2^61-element span.
  static_assert(sizeof(TimeIndex::Entry) == 8);
  const uint64_t kInflation = static_cast<uint64_t>(1) << 61;

  std::vector<char> bad = ReadAll(path_);
  auto info = InspectSnapshot(path_);
  ASSERT_TRUE(info.ok());

  std::vector<storage::SectionEntry> table(storage::kSectionCount);
  std::memcpy(table.data(), bad.data() + sizeof(storage::Superblock),
              storage::kSectionCount * sizeof(storage::SectionEntry));
  auto& entry =
      table[static_cast<uint32_t>(SectionId::kTimeIndexEntries)];
  entry.count += kInflation;
  ASSERT_EQ(entry.count * entry.elem_size, entry.size_bytes)
      << "inflation must wrap back to the true byte size for this test "
         "to exercise the overflow path";
  std::memcpy(bad.data() + sizeof(storage::Superblock), table.data(),
              storage::kSectionCount * sizeof(storage::SectionEntry));

  const auto& meta_entry =
      info->sections[static_cast<uint32_t>(SectionId::kMeta)];
  storage::SnapshotMeta meta;
  std::memcpy(&meta, bad.data() + meta_entry.offset, sizeof(meta));
  meta.num_time_entries += kInflation;
  std::memcpy(bad.data() + meta_entry.offset, &meta, sizeof(meta));

  FixUpAllChecksums(&bad);
  ExpectRejected(bad, "overflowing section count");
}

TEST_F(SnapshotCorruption, OutOfOrderSlicesAreRejected) {
  // The query path binary-searches / merge-intersects these arrays; an
  // out-of-order snapshot would answer silently wrong, so the order scan
  // must catch what the checksums (deliberately rewritten here) cannot.
  auto info = InspectSnapshot(path_);
  ASSERT_TRUE(info.ok());

  // Swapping the first two entries of a >= 2-element slice breaks strict
  // ascent; `offsets_id` locates such a slice within the value array.
  const auto swap_in_first_fat_slice = [&](SectionId offsets_id,
                                           SectionId values_id,
                                           const char* what) {
    const auto& oe = info->sections[static_cast<uint32_t>(offsets_id)];
    const std::vector<char> good = ReadAll(path_);
    const uint64_t* offsets =
        reinterpret_cast<const uint64_t*>(good.data() + oe.offset);
    uint64_t pos = 0;
    bool found = false;
    for (uint64_t s = 0; s + 1 < oe.count; ++s) {
      if (offsets[s + 1] - offsets[s] >= 2) {
        pos = offsets[s];
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << what << ": generated dataset has no fat slice";
    MutateSectionAndExpectRejected(
        values_id, what, [pos](char* payload, const storage::SectionEntry&) {
          uint32_t a, b;  // TrajId/DocId/TermId are all uint32_t
          std::memcpy(&a, payload + pos * 4, 4);
          std::memcpy(&b, payload + (pos + 1) * 4, 4);
          std::memcpy(payload + pos * 4, &b, 4);
          std::memcpy(payload + (pos + 1) * 4, &a, 4);
        });
  };
  swap_in_first_fat_slice(SectionId::kVertexIndexOffsets,
                          SectionId::kVertexIndexEntries,
                          "unsorted vertex-index slice");
  swap_in_first_fat_slice(SectionId::kKeywordIndexOffsets,
                          SectionId::kKeywordIndexPostings,
                          "unsorted posting list");
  swap_in_first_fat_slice(SectionId::kTrajKeywordOffsets,
                          SectionId::kTrajKeywordTerms,
                          "unsorted keyword slice");

  // A duplicated keyword violates the deduplication half of the invariant
  // (KeywordSet::View requires sorted AND unique).
  {
    const auto& oe = info->sections[static_cast<uint32_t>(
        SectionId::kTrajKeywordOffsets)];
    const std::vector<char> good = ReadAll(path_);
    const uint64_t* offsets =
        reinterpret_cast<const uint64_t*>(good.data() + oe.offset);
    uint64_t pos = 0;
    bool found = false;
    for (uint64_t s = 0; s + 1 < oe.count; ++s) {
      if (offsets[s + 1] - offsets[s] >= 2) {
        pos = offsets[s];
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
    MutateSectionAndExpectRejected(
        SectionId::kTrajKeywordTerms, "duplicated keyword term",
        [pos](char* payload, const storage::SectionEntry&) {
          std::memcpy(payload + (pos + 1) * 4, payload + pos * 4, 4);
        });
  }
}

TEST_F(SnapshotCorruption, UnsortedTimeIndexIsRejected) {
  MutateSectionAndExpectRejected(
      SectionId::kTimeIndexEntries, "unsorted time index",
      [](char* payload, const storage::SectionEntry& e) {
        ASSERT_GE(e.count, 2u);
        // First and last entries differ in any nonempty sorted timeline
        // with > 1 distinct (time, traj) pair; swapping them puts the
        // maximum first.
        TimeIndex::Entry first, last;
        std::memcpy(&first, payload, sizeof(first));
        std::memcpy(&last, payload + (e.count - 1) * sizeof(last),
                    sizeof(last));
        ASSERT_TRUE(first.time_s != last.time_s || first.traj != last.traj);
        std::memcpy(payload, &last, sizeof(last));
        std::memcpy(payload + (e.count - 1) * sizeof(first), &first,
                    sizeof(first));
      });
}

TEST_F(SnapshotCorruption, StructuralChecksRunEvenWithoutChecksumSweep) {
  std::vector<char> good = ReadAll(path_);
  good.resize(good.size() / 2);
  const std::string bad = TempPath("truncated.snap");
  WriteAll(bad, good);
  storage::LoadOptions opts;
  opts.verify_checksums = false;
  auto loaded = LoadSnapshot(bad, opts);
  EXPECT_FALSE(loaded.ok());
  std::remove(bad.c_str());
}

TEST(Snapshot, FailedWriteLeavesNoTempFile) {
  // Renaming onto an existing directory fails after the tmp file has been
  // fully written; the writer must clean its (uniquely named) tmp file up
  // so failed builds don't litter the snapshot cache.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "snap_write_fail";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directory(dir));
  const fs::path target = dir / "out.snap";
  ASSERT_TRUE(fs::create_directory(target));

  auto db = MakeDatabase();
  const Status st = WriteSnapshot(*db, target.string());
  EXPECT_FALSE(st.ok());
  size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path(), target) << "stray file: " << e.path();
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

TEST(Snapshot, MissingAndNonSnapshotFilesFailCleanly) {
  EXPECT_FALSE(VerifySnapshot("/no/such/file.snap").ok());
  EXPECT_FALSE(LoadSnapshot("/no/such/file.snap").ok());
  const std::string not_snap = TempPath("not_a_snapshot.txt");
  std::ofstream(not_snap) << "uots-network 1\n0 0\n";
  EXPECT_FALSE(storage::SniffSnapshotMagic(not_snap));
  EXPECT_FALSE(LoadSnapshot(not_snap).ok());
  std::remove(not_snap.c_str());
}

// --- distance oracle (format v2) ----------------------------------------

std::unique_ptr<TrajectoryDatabase> MakeOracleDatabase(uint64_t seed = 7) {
  auto db = MakeDatabase(seed);
  auto oracle = DistanceOracle::Build(db->network());
  EXPECT_TRUE(oracle.ok());
  db->AttachOracle(std::make_shared<DistanceOracle>(std::move(*oracle)));
  return db;
}

TEST(SnapshotOracle, OracleRoundTripsThroughSnapshot) {
  auto db = MakeOracleDatabase();
  const std::string path = TempPath("oracle.snap");
  ASSERT_TRUE(WriteSnapshot(*db, path).ok());
  const Status vst = VerifySnapshot(path);
  EXPECT_TRUE(vst.ok()) << vst.ToString();

  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->superblock.format_version, storage::kFormatVersion);
  EXPECT_EQ(info->sections.size(), storage::kSectionCount);
  EXPECT_EQ(info->meta.num_oracle_vertices, db->network().NumVertices());
  EXPECT_EQ(info->meta.num_oracle_edges, db->oracle()->NumUpEdges());

  auto loaded_r = LoadSnapshot(path);
  ASSERT_TRUE(loaded_r.ok()) << loaded_r.status().ToString();
  const TrajectoryDatabase& loaded = **loaded_r;
  ASSERT_NE(loaded.oracle(), nullptr);
  const DistanceOracle& a = *db->oracle();
  const DistanceOracle& b = *loaded.oracle();
  ASSERT_EQ(b.NumVertices(), a.NumVertices());
  ASSERT_EQ(b.NumUpEdges(), a.NumUpEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    ASSERT_EQ(b.RankOf(v), a.RankOf(v)) << "rank of " << v;
  }
  // Exact distances are bit-identical through the mmap-backed columns.
  OracleQuerier qa(a);
  OracleQuerier qb(b);
  Rng rng(0x0bacu);
  const auto n = static_cast<VertexId>(a.NumVertices());
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<VertexId>(rng.Next() % n);
    const auto t = static_cast<VertexId>(rng.Next() % n);
    ASSERT_EQ(qb.Distance(s, t), qa.Distance(s, t))
        << "sd(" << s << ", " << t << ")";
  }

  // Oracle-backed answers from the snapshot-loaded database match brute
  // force on the original in-memory one.
  WorkloadOptions wopts;
  wopts.num_queries = 8;
  wopts.seed = 41;
  auto queries = MakeWorkload(*db, wopts);
  ASSERT_TRUE(queries.ok());
  QueryOptions uots_opts;
  uots_opts.algorithm = AlgorithmKind::kUots;
  QueryOptions bf_opts;
  bf_opts.algorithm = AlgorithmKind::kBruteForce;
  for (const auto& q : *queries) {
    auto with_oracle = RunQuery(loaded, q, uots_opts);
    auto brute = RunQuery(*db, q, bf_opts);
    ASSERT_TRUE(with_oracle.ok() && brute.ok());
    ASSERT_EQ(with_oracle->items.size(), brute->items.size());
    for (size_t j = 0; j < brute->items.size(); ++j) {
      EXPECT_EQ(with_oracle->items[j].id, brute->items[j].id);
      EXPECT_EQ(with_oracle->items[j].score, brute->items[j].score);
    }
    EXPECT_GT(with_oracle->stats.oracle_lookups, 0);
  }
  std::remove(path.c_str());
}

TEST(SnapshotOracle, OraclelessSnapshotLoadsWithNullOracle) {
  auto db = MakeDatabase();
  ASSERT_EQ(db->oracle(), nullptr);
  const std::string path = TempPath("no_oracle.snap");
  ASSERT_TRUE(WriteSnapshot(*db, path).ok());
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->meta.num_oracle_vertices, 0u);
  EXPECT_EQ(
      info->sections[static_cast<uint32_t>(SectionId::kOracleRanks)].count,
      0u);
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->oracle(), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotOracle, SelfConsistentOracleTamperingIsRejected) {
  // Duplicate a contraction rank AND rewrite every checksum: only the
  // loader's structural oracle validation (permutation check) stands
  // between a tampered file and an out-of-bounds upward search.
  auto db = MakeOracleDatabase();
  const std::string path = TempPath("oracle_tamper.snap");
  ASSERT_TRUE(WriteSnapshot(*db, path).ok());
  std::vector<char> bad = ReadAll(path);
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok());
  const auto& e =
      info->sections[static_cast<uint32_t>(SectionId::kOracleRanks)];
  ASSERT_GE(e.count, 2u);
  std::memcpy(bad.data() + e.offset + sizeof(uint32_t), bad.data() + e.offset,
              sizeof(uint32_t));
  FixUpAllChecksums(&bad);
  const std::string tampered = TempPath("oracle_tampered.snap");
  WriteAll(tampered, bad);
  EXPECT_FALSE(VerifySnapshot(tampered).ok());
  auto loaded = LoadSnapshot(tampered);
  EXPECT_FALSE(loaded.ok());
  if (!loaded.ok()) {
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(tampered.c_str());
  std::remove(path.c_str());
}

TEST(SnapshotV1Compat, HandWrittenV1FileLoadsWithoutOracle) {
  // Down-convert a freshly written snapshot to format version 1 by hand —
  // 16 directory entries, an 80-byte meta record, no oracle sections —
  // exactly the layout v1 builds produced. The reader must load it cleanly
  // with a null oracle (back-compat is a supported path, not an accident).
  auto db = MakeDatabase();
  const std::string v2path = TempPath("compat_v2.snap");
  ASSERT_TRUE(WriteSnapshot(*db, v2path).ok());
  const std::vector<char> v2 = ReadAll(v2path);

  storage::Superblock sb;
  std::memcpy(&sb, v2.data(), sizeof(sb));
  std::vector<storage::SectionEntry> t2(storage::kSectionCount);
  std::memcpy(t2.data(), v2.data() + sizeof(sb),
              t2.size() * sizeof(storage::SectionEntry));

  std::vector<storage::SectionEntry> t1(
      t2.begin(), t2.begin() + storage::kSectionCountV1);
  std::vector<std::vector<char>> payloads;
  uint64_t cursor = storage::HeaderBytes(storage::kSectionCountV1);
  for (uint32_t i = 0; i < storage::kSectionCountV1; ++i) {
    const uint64_t size = i == static_cast<uint32_t>(SectionId::kMeta)
                              ? storage::kSnapshotMetaBytesV1
                              : t2[i].size_bytes;
    const char* src = v2.data() + t2[i].offset;
    payloads.emplace_back(src, src + size);
    storage::SectionEntry& e = t1[i];
    if (i == static_cast<uint32_t>(SectionId::kMeta)) {
      e.elem_size = static_cast<uint32_t>(storage::kSnapshotMetaBytesV1);
    }
    e.offset = cursor;
    e.size_bytes = size;
    e.crc32c = Crc32c(payloads.back().data(), payloads.back().size());
    cursor = storage::AlignUp(cursor + size);
  }
  uint32_t fingerprint = 0;
  for (const auto& e : t1) {
    const uint32_t triple[3] = {e.id, static_cast<uint32_t>(e.count),
                                e.crc32c};
    fingerprint = Crc32cExtend(fingerprint, triple, sizeof(triple));
  }
  sb.format_version = 1;
  sb.section_count = storage::kSectionCountV1;
  sb.file_size = cursor;
  sb.dataset_fingerprint = fingerprint;
  sb.section_table_crc =
      Crc32c(t1.data(), t1.size() * sizeof(storage::SectionEntry));
  sb.superblock_crc = 0;
  sb.superblock_crc = Crc32c(&sb, sizeof(sb));

  std::vector<char> v1(cursor, 0);
  std::memcpy(v1.data(), &sb, sizeof(sb));
  std::memcpy(v1.data() + sizeof(sb), t1.data(),
              t1.size() * sizeof(storage::SectionEntry));
  for (uint32_t i = 0; i < storage::kSectionCountV1; ++i) {
    std::memcpy(v1.data() + t1[i].offset, payloads[i].data(),
                payloads[i].size());
  }
  const std::string v1path = TempPath("compat_v1.snap");
  WriteAll(v1path, v1);

  const Status vst = VerifySnapshot(v1path);
  EXPECT_TRUE(vst.ok()) << vst.ToString();
  auto info = InspectSnapshot(v1path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->superblock.format_version, 1u);
  EXPECT_EQ(info->sections.size(), storage::kSectionCountV1);
  EXPECT_EQ(info->meta.num_oracle_vertices, 0u) << "zero-filled meta tail";
  EXPECT_EQ(info->meta.num_trajectories, db->store().size());

  auto loaded = LoadSnapshot(v1path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->oracle(), nullptr);

  // A v1 file answers queries identically to the in-memory database.
  WorkloadOptions wopts;
  wopts.num_queries = 6;
  auto queries = MakeWorkload(*db, wopts);
  ASSERT_TRUE(queries.ok());
  for (const auto& q : *queries) {
    auto a = RunQuery(**loaded, q, {});
    auto b = RunQuery(*db, q, {});
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->items.size(), b->items.size());
    for (size_t j = 0; j < a->items.size(); ++j) {
      EXPECT_EQ(a->items[j].id, b->items[j].id);
      EXPECT_EQ(a->items[j].score, b->items[j].score);
    }
  }
  std::remove(v1path.c_str());
  std::remove(v2path.c_str());
}

// --- resolver -----------------------------------------------------------

TEST(Resolver, RoutesSnapshotAndTextByContent) {
  auto built = MakeDatabase();
  const std::string snap = TempPath("resolver.snap");
  const std::string net = TempPath("resolver.network");
  const std::string traj = TempPath("resolver.trajectories");
  ASSERT_TRUE(SaveNetwork(built->network(), net).ok());
  ASSERT_TRUE(SaveTrajectories(built->store(), traj).ok());
  // The text format rounds coordinates (%.3f), so the bit-exactness claim
  // is stated against the text-loaded database: snapshotting it and loading
  // the snapshot back must change nothing.
  auto text_loaded = storage::LoadDatabaseFromPath(net);
  ASSERT_TRUE(text_loaded.ok()) << text_loaded.status().ToString();
  const TrajectoryDatabase* db = text_loaded->db.get();
  ASSERT_TRUE(WriteSnapshot(*db, snap).ok());
  EXPECT_TRUE(storage::SniffSnapshotMagic(snap));

  auto from_snap = storage::LoadDatabaseFromPath(snap);
  ASSERT_TRUE(from_snap.ok()) << from_snap.status().ToString();
  EXPECT_EQ(from_snap->source, storage::DatasetSource::kSnapshot);
  EXPECT_GT(from_snap->db->Memory().mmap_bytes, 0u);

  // Either half of the text pair resolves to the same database.
  for (const std::string& entry : {net, traj}) {
    auto from_text = storage::LoadDatabaseFromPath(entry);
    ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
    EXPECT_EQ(from_text->source, storage::DatasetSource::kText);
    EXPECT_EQ(from_text->db->store().size(), db->store().size());
    EXPECT_EQ(from_text->db->network().NumVertices(),
              db->network().NumVertices());
  }

  // Snapshot-loaded and text-loaded answers agree.
  WorkloadOptions wopts;
  wopts.num_queries = 6;
  auto queries = MakeWorkload(*db, wopts);
  ASSERT_TRUE(queries.ok());
  auto text_db = storage::LoadDatabaseFromPath(net);
  ASSERT_TRUE(text_db.ok());
  for (const auto& q : *queries) {
    auto a = RunQuery(*from_snap->db, q, {});
    auto b = RunQuery(*text_db->db, q, {});
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->items.size(), b->items.size());
    for (size_t j = 0; j < a->items.size(); ++j) {
      EXPECT_EQ(a->items[j].id, b->items[j].id);
      EXPECT_EQ(a->items[j].score, b->items[j].score);
    }
  }

  std::remove(snap.c_str());
  std::remove(net.c_str());
  std::remove(traj.c_str());
}

TEST(Resolver, RejectsUnrecognizedInput) {
  const std::string junk = TempPath("junk.bin");
  std::ofstream(junk) << "definitely not a dataset";
  auto r = storage::LoadDatabaseFromPath(junk);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(junk.c_str());
  EXPECT_FALSE(storage::LoadDatabaseFromPath("/no/such/path").ok());
}

}  // namespace
}  // namespace uots

// Incremental network expansion: the invariants the UOTS bounds rely on.

#include "net/expansion.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/generators.h"
#include "util/rng.h"

namespace uots {
namespace {

RoadNetwork TestNetwork(uint64_t seed) {
  RandomGeometricOptions opts;
  opts.num_vertices = 200;
  opts.seed = seed;
  auto g = MakeRandomGeometricNetwork(opts);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

class ExpansionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpansionPropertyTest, SettlesEveryVertexOnceInNondecreasingOrder) {
  const RoadNetwork g = TestNetwork(GetParam());
  NetworkExpansion ex(g);
  ex.Reset(0);
  std::vector<int> seen(g.NumVertices(), 0);
  double last = -1.0;
  VertexId v;
  double d;
  while (ex.Step(&v, &d)) {
    EXPECT_GE(d, last) << "distance order violated";
    EXPECT_DOUBLE_EQ(d, ex.radius());
    last = d;
    ++seen[v];
  }
  EXPECT_TRUE(ex.exhausted());
  for (size_t u = 0; u < g.NumVertices(); ++u) {
    EXPECT_EQ(seen[u], 1) << "vertex " << u;
  }
  EXPECT_EQ(ex.settled_count(), static_cast<int64_t>(g.NumVertices()));
}

TEST_P(ExpansionPropertyTest, DistancesMatchFullDijkstra) {
  const RoadNetwork g = TestNetwork(GetParam() + 10);
  Rng rng(GetParam());
  const VertexId source = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
  const ShortestPathTree tree = ComputeShortestPathTree(g, source);
  NetworkExpansion ex(g);
  ex.Reset(source);
  VertexId v;
  double d;
  while (ex.Step(&v, &d)) {
    EXPECT_NEAR(d, tree.dist[v], 1e-9) << "vertex " << v;
  }
}

TEST_P(ExpansionPropertyTest, RadiusLowerBoundsUnsettledVertices) {
  // THE invariant behind Eq. (13)/(16)-style bounds: at any point of the
  // expansion, every not-yet-settled vertex is at distance >= radius().
  const RoadNetwork g = TestNetwork(GetParam() + 20);
  const ShortestPathTree tree = ComputeShortestPathTree(g, 5);
  NetworkExpansion ex(g);
  ex.Reset(5);
  std::vector<bool> settled(g.NumVertices(), false);
  VertexId v;
  double d;
  int checkpoint = 0;
  while (ex.Step(&v, &d)) {
    settled[v] = true;
    if (++checkpoint % 37 == 0) {
      for (VertexId u = 0; u < g.NumVertices(); ++u) {
        if (!settled[u]) {
          EXPECT_GE(tree.dist[u] + 1e-12, ex.radius()) << "vertex " << u;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionPropertyTest,
                         ::testing::Values(1, 2, 3));

TEST(Expansion, ResetRestartsCleanly) {
  const RoadNetwork g = TestNetwork(42);
  NetworkExpansion ex(g);
  ex.Reset(0);
  VertexId v;
  double d;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ex.Step(&v, &d));
  const double radius_before = ex.radius();
  EXPECT_GT(radius_before, 0.0);

  ex.Reset(7);
  EXPECT_DOUBLE_EQ(ex.radius(), 0.0);
  EXPECT_FALSE(ex.exhausted());
  ASSERT_TRUE(ex.Step(&v, &d));
  EXPECT_EQ(v, 7u);  // source settles first at distance 0
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(Expansion, RepeatedResetMatchesFreshInstance) {
  const RoadNetwork g = TestNetwork(43);
  NetworkExpansion reused(g);
  for (VertexId source : {0u, 10u, 20u}) {
    reused.Reset(source);
    NetworkExpansion fresh(g);
    fresh.Reset(source);
    VertexId v1, v2;
    double d1, d2;
    while (true) {
      const bool ok1 = reused.Step(&v1, &d1);
      const bool ok2 = fresh.Step(&v2, &d2);
      ASSERT_EQ(ok1, ok2);
      if (!ok1) break;
      EXPECT_EQ(v1, v2);
      EXPECT_DOUBLE_EQ(d1, d2);
    }
  }
}

TEST(Expansion, FirstStepIsSource) {
  const RoadNetwork g = TestNetwork(44);
  NetworkExpansion ex(g);
  ex.Reset(3);
  VertexId v;
  double d;
  ASSERT_TRUE(ex.Step(&v, &d));
  EXPECT_EQ(v, 3u);
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(Expansion, NoStalePopsAfterFullDrain) {
  // The indexed frontier heap holds each vertex at most once, so a full
  // drain pops exactly one entry per settled vertex — the lazy-deletion
  // regression this guards against popped ~|E|/|V| stale entries each.
  const RoadNetwork g = TestNetwork(45);
  NetworkExpansion ex(g);
  ex.Reset(0);
  VertexId v;
  double d;
  while (ex.Step(&v, &d)) {
  }
  EXPECT_EQ(ex.heap_pops(), ex.settled_count());
  // Conservation: every insert is eventually popped (the drain is full).
  EXPECT_EQ(ex.heap_pushes(), ex.heap_pops());
  // Relaxations that found a shorter path decreased in place instead of
  // duplicating; on this geometric graph some must have occurred.
  EXPECT_GT(ex.heap_decreases(), 0);
}

TEST(Expansion, PartialDrainPopsMatchSettles) {
  const RoadNetwork g = TestNetwork(46);
  NetworkExpansion ex(g);
  ex.Reset(3);
  VertexId v;
  double d;
  for (int i = 0; i < 50 && ex.Step(&v, &d); ++i) {
  }
  EXPECT_EQ(ex.heap_pops(), ex.settled_count());
}

}  // namespace
}  // namespace uots
